package collector

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// shard is one partition of the collector's link-state database. Ownership
// is by key, not by probe: the directed edge (from, to) — adjacency,
// last-seen time, tombstone, delay EWMA, and rate override — lives in the
// shard owning from; per-device state (queue reports, last-report time)
// lives in the shard owning the device; host flags live in the shard owning
// the node; probe-stream metadata lives in the shard owning the origin.
// A probe that traverses several partitions therefore touches several
// shards, and HandleProbe locks exactly the owners of the nodes on the hop
// sequence so concurrent probes through disjoint partitions never contend.
//
// Lock-order invariant (mechanically enforced by the shardlock analyzer in
// internal/lint): the order key is the shard index — the shard's position
// in Collector.shards, as computed by shardOf. A goroutine may hold at most
// one streamMu, acquired strictly before any mu and never while holding
// one. Multiple mu may be held simultaneously only when acquired in
// ascending shard-index order: HandleProbe and reassembleProbe sort and
// deduplicate the index set first (sort.Ints) and lock in a single forward
// sweep; pairwise lockers such as SetLinkRate swap the two indices into
// ascending order before locking (skipping the second Lock when both keys
// land in one shard); iterators like Stats hold one mu at a time. Unlock
// order is unconstrained — reverse order is the convention. Helpers named
// *Locked acquire nothing and rely on the caller's locks.
type shard struct {
	// mu guards all owned link-state below (everything except the stream
	// fields, which streamMu guards). See the lock-order invariant on the
	// type comment before acquiring more than one.
	mu sync.Mutex

	// adj maps device -> egress port -> neighbor for owned from-nodes.
	adj map[string]map[int]string
	// adjSeen maps each owned directed edge to its last confirmation time.
	adjSeen map[edgeKey]time.Duration
	// evicted tombstones owned edges removed by aging.
	evicted map[edgeKey]time.Duration
	// isHost marks owned nodes known to be hosts.
	isHost map[string]bool
	// linkDelay and linkRate hold per-edge measurement state for owned
	// edges (keyed by the edge's from node).
	linkDelay map[edgeKey]*linkState
	linkRate  map[edgeKey]int64
	// queues holds per-device, per-port queue windows for owned devices;
	// keying by device first keeps per-record pruning proportional to one
	// device's ports, not the whole fabric's. Each port's window carries a
	// monotonic deque so view rebuilds read the windowed max off the deque
	// front (see queuewindow.go).
	queues map[string]map[int]*portWindow
	// lastReport maps owned devices to their last INT record time.
	lastReport map[string]time.Duration
	// onEviction observes adjacency evictions of owned edges.
	onEviction   func(from, to string, silence time.Duration)
	adjEvictions uint64

	// epoch versions this shard's owned state. Bumped (under mu) on every
	// accepted probe touching the shard, on configuration changes, and on
	// expiry-triggered view rebuilds. The collector's composite epoch
	// vector is the per-shard epochs side by side.
	epoch atomic.Uint64
	// view is the shard's cached immutable state view, rebuilt lazily when
	// the epoch moves or the view expires (see snapshot.go).
	view atomic.Pointer[shardView]

	// streamMu guards probe-stream state for origins owned by this shard.
	// It sits above every mu in the lock order: a goroutine acquires at
	// most one streamMu (the origin shard's — ingest is serialized per
	// origin), always before any shard's mu and never while holding one.
	// One stream lock plus an ascending mu sweep cannot deadlock: stream
	// locks never nest, and the mu level is totally ordered by shard index.
	streamMu sync.Mutex
	streams  map[probeKey]probeMeta
	// reasm holds per-stream reassembly buffers for probabilistic probes
	// originating in this shard (lazily created; guarded by streamMu, like
	// the stream metadata — the owning shard of the reassembly state is
	// the origin's shard by construction).
	reasm map[probeKey]*reasmState
	// onReassembly observes completed reassembly cycles of streams
	// originating in this shard (guarded by streamMu).
	onReassembly func(origin, target string, hops int, latency time.Duration)
	// pathScratch and lockScratch are reusable HandleProbe buffers,
	// guarded by streamMu (one probe per origin shard at a time).
	pathScratch []string
	lockScratch []int
}

func newShard() *shard {
	return &shard{
		adj:        make(map[string]map[int]string),
		adjSeen:    make(map[edgeKey]time.Duration),
		evicted:    make(map[edgeKey]time.Duration),
		isHost:     make(map[string]bool),
		linkDelay:  make(map[edgeKey]*linkState),
		linkRate:   make(map[edgeKey]int64),
		queues:     make(map[string]map[int]*portWindow),
		lastReport: make(map[string]time.Duration),
		streams:    make(map[probeKey]probeMeta),
	}
}

// learnEdgeLocked records the directed adjacency from --(port)--> to.
func (sh *shard) learnEdgeLocked(from string, port int, to string, now time.Duration) {
	m := sh.adj[from]
	if m == nil {
		m = make(map[int]string)
		sh.adj[from] = m
	}
	m[port] = to
	sh.adjSeen[edgeKey{from, to}] = now
	delete(sh.evicted, edgeKey{from, to})
}

// updateDelayLocked folds one latency sample into the edge's EWMA and
// Welford jitter accumulators.
func (sh *shard) updateDelayLocked(k edgeKey, sample time.Duration, now time.Duration, alpha float64) {
	if sample <= 0 {
		return
	}
	st := sh.linkDelay[k]
	if st == nil {
		st = &linkState{ewma: sample}
		sh.linkDelay[k] = st
	} else {
		st.ewma = time.Duration(alpha*float64(sample) + (1-alpha)*float64(st.ewma))
	}
	st.lastSample = sample
	st.samples++
	st.updatedAt = now
	delta := float64(sample) - st.mean
	st.mean += delta / float64(st.samples)
	st.m2 += delta * (float64(sample) - st.mean)
}

// pruneQueuesLocked drops queue reports of one device that aged out of the
// queue window; ports whose windows emptied are removed entirely.
func (sh *shard) pruneQueuesLocked(device string, now, window time.Duration) {
	for port, w := range sh.queues[device] {
		if !w.prune(now, window) {
			delete(sh.queues[device], port)
		}
	}
}

// windowedQueueMax scans one port's reports and returns the maximum queue
// occupancy among in-window reports, whether any report is in the window,
// and the earliest time an in-window report ages out (neverExpires if none)
// — the moment a cached view built from these reports must be rebuilt. It
// defines the queue-window cutoff/boundary rule; the hot paths read the
// same answer off portWindow's monotonic deque (queuewindow.go), and
// TestPortWindowMatchesScan holds the two equal.
func windowedQueueMax(reports []queueReport, now, window time.Duration) (best int, found bool, expireAt time.Duration) {
	expireAt = neverExpires
	cutoff := now - window
	for i := range reports {
		if reports[i].at < cutoff {
			continue
		}
		found = true
		if reports[i].maxQueue > best {
			best = reports[i].maxQueue
		}
		if e := reports[i].at + window; e < expireAt {
			expireAt = e
		}
	}
	return best, found, expireAt
}

type linkState struct {
	ewma       time.Duration
	lastSample time.Duration
	samples    uint64
	updatedAt  time.Duration
	// Welford accumulators for jitter (sample standard deviation); the
	// paper probes link latency periodically precisely "to capture jitter
	// characteristics".
	mean float64
	m2   float64
}

// jitter returns the sample standard deviation of link latency.
func (st *linkState) jitter() time.Duration {
	if st.samples < 2 {
		return 0
	}
	return time.Duration(math.Sqrt(st.m2 / float64(st.samples-1)))
}
