package collector

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// Tests for incremental shortest-path-tree maintenance: a randomized
// property check against an independent from-scratch BFS, and a targeted
// test that an edge flap in one region catches trees of unaffected
// destinations up in place instead of rebuilding them.

// refNextHops is the independent reference: a from-scratch BFS toward dst
// over the snapshot's public accessors, replicating the deterministic rule
// (sorted frontier, sorted neighbors, first-discoverer-wins, level barrier,
// hosts discovered but never expanded).
func refNextHops(topo *Topology, dst string) map[string]string {
	next := map[string]string{}
	dist := map[string]int{dst: 0}
	frontier := []string{dst}
	for len(frontier) > 0 {
		var nextFrontier []string
		for _, cur := range frontier {
			for _, nb := range topo.Neighbors(cur) {
				if _, ok := dist[nb]; ok {
					continue
				}
				dist[nb] = dist[cur] + 1
				next[nb] = cur
				if !(topo.IsHost(nb) && nb != dst) {
					nextFrontier = append(nextFrontier, nb)
				}
			}
		}
		frontier = nextFrontier
	}
	return next
}

// refPath walks the reference next-hop map from src to dst; nil means
// unreachable.
func refPath(topo *Topology, next map[string]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	if len(topo.Neighbors(src)) == 0 {
		return nil // Path treats adjacency-less nodes as unknown
	}
	path := []string{src}
	for cur := src; cur != dst; {
		nxt, ok := next[cur]
		if !ok {
			return nil
		}
		// Hosts do not forward: a path transiting one is invalid (the BFS
		// never produces this, which the comparison below verifies).
		if cur != src && topo.IsHost(cur) {
			return nil
		}
		path = append(path, nxt)
		cur = nxt
	}
	return path
}

// TestIncrementalSPTMatchesFromScratchBFS drives a collector through a
// randomized sequence of probe-path learnings, reroutes (remaps with
// accelerated aging), and silence-driven evictions, and after every
// mutation compares every (src, dst) path served by the incremental store
// against the reference BFS on the same snapshot.
func TestIncrementalSPTMatchesFromScratchBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond, Shards: 4})

	origins := []string{"h0", "h1", "h2", "h3"}
	targets := []string{"", "h4"} // "" probes the collector itself
	switches := []string{"w0", "w1", "w2", "w3", "w4", "w5"}
	type streamKey struct{ origin, target string }
	seqs := map[streamKey]uint64{}

	randomPath := func() []devSpec {
		n := 1 + rng.Intn(3)
		perm := rng.Perm(len(switches))
		devs := make([]devSpec, n)
		for i := 0; i < n; i++ {
			devs[i] = devSpec{id: switches[perm[i]], in: rng.Intn(4), out: rng.Intn(4), egressTS: clk.now}
		}
		return devs
	}

	check := func(iter int) {
		topo := c.Snapshot()
		for _, dst := range topo.Nodes {
			next := refNextHops(topo, dst)
			for _, src := range topo.Nodes {
				want := refPath(topo, next, src, dst)
				got, err := topo.Path(src, dst)
				if want == nil {
					if err == nil {
						t.Fatalf("iter %d: Path(%s,%s)=%v, reference says unreachable", iter, src, dst, got)
					}
					continue
				}
				if err != nil {
					t.Fatalf("iter %d: Path(%s,%s) error %v, reference %v", iter, src, dst, err, want)
				}
				if !stringsEqual(got, want) {
					t.Fatalf("iter %d: Path(%s,%s)=%v, reference %v", iter, src, dst, got, want)
				}
			}
		}
	}

	for iter := 0; iter < 400; iter++ {
		key := streamKey{origins[rng.Intn(len(origins))], targets[rng.Intn(len(targets))]}
		seqs[key]++
		p := probeFrom(key.origin, seqs[key], time.Duration(1+rng.Intn(10))*time.Millisecond, randomPath()...)
		p.Target = key.target
		if key.target != "" {
			p.LastHopLatency = time.Duration(1+rng.Intn(5)) * time.Millisecond
		}
		c.HandleProbe(p)
		if rng.Intn(12) == 0 {
			clk.now += 600 * time.Millisecond // long silence: age abandoned edges out
		} else {
			clk.now += time.Duration(20+rng.Intn(120)) * time.Millisecond
		}
		check(iter)
	}
}

// TestIncrementalSPTReusesUnaffectedTrees: evicting one link must catch up
// destination trees it provably cannot touch (same *destTree, no rebuild)
// while rebuilding trees it does.
func TestIncrementalSPTReusesUnaffectedTrees(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond}) // TTL 1 s
	probe := func(origin, target string, seq uint64, devs ...devSpec) {
		for i := range devs {
			devs[i].egressTS = clk.now
		}
		p := probeFrom(origin, seq, 2*time.Millisecond, devs...)
		p.Target = target
		if target != "" {
			p.LastHopLatency = time.Millisecond
		}
		c.HandleProbe(p)
	}
	// Fabric: hosts b, c, d on switches w1, w2, w3; w2 uplinks to the
	// scheduler; the w1–w3 link is carried ONLY by the b->c stream (every
	// other edge is shared with a surviving stream), so silencing that
	// stream evicts exactly w1<->w3 and leaves the node set unchanged.
	// Ports are consistent per physical link (hosts use port 0).
	feed := func(seq uint64, withS2 bool) {
		probe("b", "", seq,
			devSpec{id: "w1", in: 1, out: 2}, devSpec{id: "w2", in: 1, out: 2})
		probe("d", "", seq,
			devSpec{id: "w3", in: 3, out: 2}, devSpec{id: "w2", in: 3, out: 2})
		probe("c", "", seq, devSpec{id: "w2", in: 4, out: 2})
		if withS2 {
			probe("b", "c", seq,
				devSpec{id: "w1", in: 1, out: 3},
				devSpec{id: "w3", in: 1, out: 2},
				devSpec{id: "w2", in: 3, out: 4})
		}
	}
	feed(1, true)
	for s := uint64(2); s <= 4; s++ {
		clk.now += 300 * time.Millisecond
		feed(s, false)
	}
	// Warm the store's trees at the pre-flap structure (t=1.9s; the b->c
	// stream's edges were last confirmed at t=1.0s).
	topo := c.Snapshot()
	if p, err := topo.Path("b", "sched"); err != nil || !stringsEqual(p, []string{"b", "w1", "w2", "sched"}) {
		t.Fatalf("warm path b->sched %v %v", p, err)
	}
	if p, err := topo.Path("b", "w3"); err != nil || !stringsEqual(p, []string{"b", "w1", "w3"}) {
		t.Fatalf("warm path b->w3 %v %v", p, err)
	}
	c.spt.mu.RLock()
	treeSched, treeW3 := c.spt.trees["sched"], c.spt.trees["w3"]
	c.spt.mu.RUnlock()
	if treeSched == nil || treeW3 == nil {
		t.Fatal("trees not memoized in shared store")
	}

	// Flap: the b->c stream ages out (cutoff passes t=1.0s), every other
	// stream stays fresh, so exactly w1<->w3 is evicted.
	clk.now += 400 * time.Millisecond // 2.3s
	feed(5, false)
	clk.now += 50 * time.Millisecond // 2.35s: cutoff 1.35s
	topo = c.Snapshot()
	if evicted := c.EvictedEdges(); len(evicted) != 2 {
		t.Fatalf("want exactly the w1<->w3 eviction pair, got %v", evicted)
	}
	if _, err := topo.Path("b", "sched"); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Path("b", "w3"); err != nil {
		t.Fatal(err)
	}
	c.spt.mu.RLock()
	treeSched2, treeW32 := c.spt.trees["sched"], c.spt.trees["w3"]
	c.spt.mu.RUnlock()
	// The w1–w3 link is on no shortest path toward sched (both switches
	// are discovered via w2), so the delta classifier must catch the
	// sched tree up in place.
	if treeSched2 != treeSched {
		t.Fatal("unaffected tree toward sched was rebuilt instead of caught up")
	}
	if treeSched2.seq != topo.seq {
		t.Fatalf("caught-up tree seq %d, topology seq %d", treeSched2.seq, topo.seq)
	}
	// w1's discovery edge toward w3 was exactly the evicted link, so that
	// tree must have been rebuilt.
	if treeW32 == treeW3 {
		t.Fatal("affected tree toward w3 was reused despite losing its discovery edge")
	}
	// And the rebuilt route detours: b–w1 now reaches w3 via w2.
	if p, _ := topo.Path("w1", "w3"); !stringsEqual(p, []string{"w1", "w2", "w3"}) {
		t.Fatalf("post-flap path w1->w3 = %v", p)
	}
}

// TestSPTStructureUnchangedKeepsSequence: probes that only refresh existing
// state (queue reports, delay samples) advance epochs but not the SPT
// sequence, so every cached tree stays valid without any catch-up walk.
func TestSPTStructureUnchangedKeepsSequence(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, 5*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 3}, egressTS: clk.now}))
	t1 := c.Snapshot()
	if _, err := t1.Path("n1", "sched"); err != nil {
		t.Fatal(err)
	}
	clk.now += 50 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 2, 6*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 9}, egressTS: clk.now}))
	t2 := c.Snapshot()
	if t2 == t1 {
		t.Fatal("epoch should have advanced the snapshot")
	}
	if t2.seq != t1.seq {
		t.Fatalf("structure unchanged but seq moved: %d -> %d", t1.seq, t2.seq)
	}
	c.spt.mu.RLock()
	tree := c.spt.trees["sched"]
	c.spt.mu.RUnlock()
	before := fmt.Sprintf("%p", tree)
	if _, err := t2.Path("n1", "sched"); err != nil {
		t.Fatal(err)
	}
	c.spt.mu.RLock()
	after := fmt.Sprintf("%p", c.spt.trees["sched"])
	c.spt.mu.RUnlock()
	if before != after {
		t.Fatal("tree rebuilt despite unchanged structure")
	}
}
