package collector

import "sync"

// Incremental shortest-path-tree maintenance. The historical collector
// memoized one BFS tree per destination inside each snapshot, so every
// epoch advance — even a single flapped link — threw away every
// destination's tree. The sptStore versions the merged topology structure
// with a sequence number and a bounded delta log of edge additions/removals
// between consecutive merges; a cached destination tree whose sequence lags
// the current structure is caught up in place when no logged delta can
// affect it (the common case: a link flap in one partition leaves the vast
// majority of destination trees provably intact) and rebuilt from scratch
// only when a delta actually touches it.
//
// Trees are index-based: node i is Nodes[i] of the merged snapshot, and
// because the merged node list is sorted, index order equals lexicographic
// order, preserving the deterministic BFS tie-break rule shared with
// netsim.ComputeRoutes. The delta classifier's soundness rests on that BFS:
//
//   - a removed directed edge (u, v) can only change the tree toward dst if
//     it was v's discovery edge (next[v] == u): any other edge into v loses
//     the first-discoverer race, so deleting it replays identically;
//   - an added directed edge (u, v) cannot change the tree if u is
//     unreachable (BFS never expands u), if u is a non-destination host
//     (hosts are discovered but never expanded), or if dist[v] <= dist[u]
//     (v is already visited by the time u expands — the level barrier);
//     otherwise (dist[v] > dist[u], or v unreachable) the tree is
//     conservatively rebuilt, which also covers same-level parent-order
//     changes.
//
// A change to the node set or host flags shifts indices or expansion rules,
// so it conservatively clears every cached tree.

// sptDeltaLogCap bounds the delta log; trees lagging further behind than
// the log reaches are rebuilt.
const sptDeltaLogCap = 64

type sptEdge struct{ u, v int32 }

type sptDelta struct {
	seq uint64
	// nodesChanged marks a merge where the node list or host flags
	// changed; added/removed are empty then (indices are not comparable).
	nodesChanged   bool
	added, removed []sptEdge
}

// destTree is the BFS shortest-path tree toward one destination, indexed by
// merged node index: next[i] is the next hop of node i toward the
// destination (-1 when unreachable), dist[i] the hop count (-1 when
// unreachable).
type destTree struct {
	seq  uint64
	next []int32
	dist []int32
}

// sptStore versions merged topology structure and caches per-destination
// trees across snapshots.
type sptStore struct {
	mu  sync.RWMutex
	seq uint64
	// prev* hold the structure of the latest merge, for diffing.
	prevNodes []string
	prevNbr   [][]int32
	prevHost  []bool
	// deltas is the recent history, ascending by seq.
	deltas []sptDelta
	trees  map[string]*destTree
}

func newSPTStore() *sptStore {
	return &sptStore{trees: make(map[string]*destTree)}
}

// advance registers the structure of a fresh merge and returns its sequence
// number. Identical structure keeps the current sequence (trees stay valid
// as-is); a changed neighbor structure appends a delta; a changed node list
// or host-flag set clears all cached trees.
func (s *sptStore) advance(nodes []string, nbr [][]int32, hostFlag []bool) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prevNodes == nil && s.seq == 0 {
		s.seq = 1
		s.prevNodes, s.prevNbr, s.prevHost = nodes, nbr, hostFlag
		return s.seq
	}
	nodesChanged := !stringsEqual(s.prevNodes, nodes) || !boolsEqual(s.prevHost, hostFlag)
	var added, removed []sptEdge
	if !nodesChanged {
		for i := range nbr {
			a, r := diffSortedEdges(int32(i), s.prevNbr[i], nbr[i])
			added = append(added, a...)
			removed = append(removed, r...)
		}
		if len(added) == 0 && len(removed) == 0 {
			return s.seq // structure unchanged: same sequence, trees valid
		}
	}
	s.seq++
	s.prevNodes, s.prevNbr, s.prevHost = nodes, nbr, hostFlag
	if nodesChanged {
		s.trees = make(map[string]*destTree)
		s.deltas = s.deltas[:0]
		s.deltas = append(s.deltas, sptDelta{seq: s.seq, nodesChanged: true})
		return s.seq
	}
	s.deltas = append(s.deltas, sptDelta{seq: s.seq, added: added, removed: removed})
	if len(s.deltas) > sptDeltaLogCap {
		s.deltas = append(s.deltas[:0:0], s.deltas[len(s.deltas)-sptDeltaLogCap:]...)
	}
	return s.seq
}

// diffSortedEdges diffs two ascending neighbor rows of node u into added
// and removed directed edges (u, v).
func diffSortedEdges(u int32, old, cur []int32) (added, removed []sptEdge) {
	i, j := 0, 0
	for i < len(old) || j < len(cur) {
		switch {
		case i == len(old):
			added = append(added, sptEdge{u, cur[j]})
			j++
		case j == len(cur):
			removed = append(removed, sptEdge{u, old[i]})
			i++
		case old[i] == cur[j]:
			i++
			j++
		case old[i] < cur[j]:
			removed = append(removed, sptEdge{u, old[i]})
			i++
		default:
			added = append(added, sptEdge{u, cur[j]})
			j++
		}
	}
	return added, removed
}

// treeFor returns the shortest-path tree toward dst for topology t, using
// the shared store when t is the store's current structure (catching up or
// rebuilding the cached tree as the delta log dictates) and a per-topology
// scratch memo otherwise (superseded snapshots keep working, they just
// don't share). Returns nil when dst is unknown.
func (t *Topology) treeFor(dst string) *destTree {
	idst, ok := t.nodeIndex[dst]
	if !ok {
		return nil
	}
	return t.treeForIdx(idst)
}

// treeForIdx is treeFor in index space: idst is the destination's merged
// node index (out-of-range yields nil, mirroring an unknown destination).
func (t *Topology) treeForIdx(idst int32) *destTree {
	if idst < 0 || int(idst) >= len(t.Nodes) {
		return nil
	}
	dst := t.Nodes[idst]
	if s := t.store; s != nil {
		s.mu.RLock()
		if s.seq == t.seq {
			if tree := s.trees[dst]; tree != nil && tree.seq == t.seq {
				s.mu.RUnlock()
				return tree
			}
		}
		s.mu.RUnlock()
		s.mu.Lock()
		if s.seq == t.seq {
			tree := s.trees[dst]
			if tree != nil && tree.seq != t.seq {
				if s.catchUpLocked(tree, t, idst) {
					tree.seq = t.seq
				} else {
					tree = nil
				}
			}
			if tree == nil {
				tree = buildDestTree(t, idst)
				tree.seq = t.seq
				s.trees[dst] = tree
			}
			s.mu.Unlock()
			return tree
		}
		s.mu.Unlock()
		// The store advanced past this snapshot: fall through to scratch.
	}
	return t.scratchTree(dst, idst)
}

// catchUpLocked reports whether tree (built at tree.seq against the same
// node ordering) is provably unaffected by every delta in
// (tree.seq, t.seq]. Deltas outside the log, node-set changes, and any
// possibly-affecting edge change all return false (rebuild).
func (s *sptStore) catchUpLocked(tree *destTree, t *Topology, idst int32) bool {
	if tree.seq > t.seq {
		return false
	}
	// The log must cover every sequence in (tree.seq, t.seq].
	for want := tree.seq + 1; want <= t.seq; want++ {
		d, ok := s.deltaLocked(want)
		if !ok || d.nodesChanged {
			return false
		}
		if sptDeltaAffects(d, tree, t.hostFlag, idst) {
			return false
		}
	}
	return true
}

func (s *sptStore) deltaLocked(seq uint64) (*sptDelta, bool) {
	if len(s.deltas) == 0 {
		return nil, false
	}
	first := s.deltas[0].seq
	if seq < first || seq > s.deltas[len(s.deltas)-1].seq {
		return nil, false
	}
	return &s.deltas[seq-first], true
}

// sptDeltaAffects applies the soundness rules from the package comment.
func sptDeltaAffects(d *sptDelta, tree *destTree, hostFlag []bool, idst int32) bool {
	for _, e := range d.removed {
		if tree.next[e.v] == e.u {
			return true // discovery edge of v toward dst: tree invalid
		}
	}
	for _, e := range d.added {
		if tree.dist[e.u] == -1 {
			continue // u unreachable: BFS never expands it
		}
		if hostFlag[e.u] && e.u != idst {
			continue // non-destination hosts are never expanded
		}
		if dv := tree.dist[e.v]; dv == -1 || dv > tree.dist[e.u] {
			return true // v newly reachable, closer, or parent order may shift
		}
	}
	return false
}

// scratchTree memoizes trees privately on the Topology (used when the
// snapshot is superseded or snapshot caching is off).
func (t *Topology) scratchTree(dst string, idst int32) *destTree {
	t.scratchMu.Lock()
	defer t.scratchMu.Unlock()
	if tree, ok := t.scratch[dst]; ok {
		return tree
	}
	tree := buildDestTree(t, idst)
	if t.scratch == nil {
		t.scratch = make(map[string]*destTree)
	}
	t.scratch[dst] = tree
	return tree
}

// buildDestTree runs the deterministic frontier BFS from the destination
// over the merged index arrays: sorted-neighbor expansion (index order is
// name order), first-discoverer-wins, level barrier between frontiers, and
// hosts discovered but never expanded — the same rule as
// netsim.ComputeRoutes and the pre-sharding collector.
func buildDestTree(t *Topology, idst int32) *destTree {
	n := len(t.Nodes)
	tree := &destTree{next: make([]int32, n), dist: make([]int32, n)}
	for i := 0; i < n; i++ {
		tree.next[i] = -1
		tree.dist[i] = -1
	}
	tree.dist[idst] = 0
	frontier := []int32{idst}
	var nextFrontier []int32
	for len(frontier) > 0 {
		nextFrontier = nextFrontier[:0]
		for _, cur := range frontier {
			for _, nb := range t.nbrIdx[cur] {
				if tree.dist[nb] != -1 {
					continue
				}
				tree.dist[nb] = tree.dist[cur] + 1
				tree.next[nb] = cur
				if !(t.hostFlag[nb] && nb != idst) {
					nextFrontier = append(nextFrontier, nb)
				}
			}
		}
		frontier, nextFrontier = nextFrontier, frontier
	}
	return tree
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
