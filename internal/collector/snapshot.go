package collector

import (
	"math"
	"sort"
	"time"
)

// Snapshot construction. Each shard lazily materializes an immutable
// shardView of its owned state, cached per shard and rebuilt only when that
// shard's epoch moved or the view expired (a queue report aged out of the
// window, or an adjacency hit its TTL). The global Snapshot() is a
// merge-on-read: it composes the per-shard views into one Topology, copying
// only the merged node/host index (the heavy per-edge maps stay inside the
// views and lookups delegate to the owning view). A snapshot is versioned
// by the composite epoch vector — one counter per shard — so a mutation in
// one partition invalidates only that shard's view; the other shards' views
// are reused as-is.

// neverExpires marks views with no in-window queue reports and no adjacency
// deadline; they stay valid until the epoch advances.
const neverExpires = time.Duration(math.MaxInt64)

// shardView is one shard's immutable state view.
type shardView struct {
	// epoch is the shard epoch the view was built at.
	epoch uint64
	// expireAt is the earliest time the view goes stale without new probes
	// (queue-report or adjacency-TTL expiry; neverExpires if none).
	expireAt time.Duration
	// present lists every node appearing in the shard's owned adjacency
	// (from- and to-sides), sorted.
	present []string
	// neighbors maps owned from-nodes to their sorted neighbor IDs.
	neighbors map[string][]string
	// egressPort maps owned (from, to) -> from's egress port toward to.
	egressPort map[edgeKey]int
	// linkDelay / linkJitter map owned (from, to) -> latency estimate and
	// latency standard deviation.
	linkDelay  map[edgeKey]time.Duration
	linkJitter map[edgeKey]time.Duration
	// queueMax / queueSeen map owned (device, port) -> windowed max queue
	// occupancy and report presence.
	queueMax  map[portKey]int
	queueSeen map[portKey]bool
	// linkRate maps owned (from, to) -> configured capacity in bps.
	linkRate map[edgeKey]int64
	// hostList lists owned hosts, sorted.
	hostList []string
}

// mergedSnap is the atomically published merged snapshot together with its
// validity bounds.
type mergedSnap struct {
	topo     *Topology
	vector   []uint64
	expireAt time.Duration
}

// Snapshot returns the current learned topology and link state. The
// returned Topology is immutable and shared: repeated calls return the
// identical pointer until a state-mutating probe/report advances some
// shard's epoch. An in-window queue report or adjacency aging out also
// triggers a rebuild of the affected shard's view — the windowed maxima or
// adjacency changed without a new probe — and advances that shard's epoch
// itself, so a rebuilt snapshot is never published under the epoch vector
// of a superseded one. The fast path is lock-free, so any number of
// concurrent readers can query while probes are being ingested.
func (c *Collector) Snapshot() *Topology {
	now := c.clock()
	if c.noSnapCache.Load() {
		return c.buildUncached(now)
	}
	if s := c.snap.Load(); s != nil && now <= s.expireAt && c.vectorCurrent(s.vector) {
		return s.topo
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	views := make([]*shardView, len(c.shards))
	vector := make([]uint64, len(c.shards))
	expireAt := neverExpires
	for i, sh := range c.shards {
		v := sh.freshView(c, now)
		views[i] = v
		vector[i] = v.epoch
		if v.expireAt < expireAt {
			expireAt = v.expireAt
		}
	}
	// Double-check under the lock: another goroutine may have merged the
	// same vector already.
	if s := c.snap.Load(); s != nil && vectorEqual(s.vector, vector) {
		return s.topo
	}
	topo := c.merge(views, vector, now, c.spt)
	c.snap.Store(&mergedSnap{topo: topo, vector: vector, expireAt: expireAt})
	return topo
}

// buildUncached rebuilds fresh per-shard views and a fresh merged Topology
// on every call (the pre-caching behavior; see SetSnapshotCaching). Expiry
// does not advance epochs in this mode, and path trees are memoized per
// returned Topology rather than in the shared incremental store.
func (c *Collector) buildUncached(now time.Duration) *Topology {
	views := make([]*shardView, len(c.shards))
	vector := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		views[i] = sh.buildViewLocked(c, now, sh.epoch.Load())
		sh.mu.Unlock()
		vector[i] = views[i].epoch
	}
	return c.merge(views, vector, now, nil)
}

// vectorCurrent reports whether vec matches every shard's live epoch.
func (c *Collector) vectorCurrent(vec []uint64) bool {
	for i, sh := range c.shards {
		if sh.epoch.Load() != vec[i] {
			return false
		}
	}
	return true
}

func vectorEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// freshView returns the shard's current view, rebuilding it if the shard's
// epoch moved or the cached view expired. An expiry-only rebuild (queue
// report aged out, adjacency TTL hit, with no probe in between) advances
// the shard's epoch so the rebuilt view is distinguishable from the expired
// one and epoch-keyed caches downstream (core.RankCache) invalidate instead
// of serving rankings computed from the stale state.
func (sh *shard) freshView(c *Collector, now time.Duration) *shardView {
	if v := sh.view.Load(); v != nil && v.epoch == sh.epoch.Load() && now <= v.expireAt {
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	epoch := sh.epoch.Load()
	if v := sh.view.Load(); v != nil && v.epoch == epoch {
		if now <= v.expireAt {
			return v
		}
		epoch = sh.epoch.Add(1)
	}
	v := sh.buildViewLocked(c, now, epoch)
	sh.view.Store(v)
	return v
}

// buildViewLocked deep-copies the shard's owned state into a fresh
// immutable view. Aged-out adjacencies are evicted here, right before the
// copy, so an eviction becomes visible exactly when a view is (re)built —
// and because expiry-triggered rebuilds advance the shard epoch (see
// freshView), a post-eviction view is never published under a pre-eviction
// epoch.
func (sh *shard) buildViewLocked(c *Collector, now time.Duration, epoch uint64) *shardView {
	window := c.window()
	adjDeadline := sh.pruneAdjLocked(now, c.adjTTL())
	v := &shardView{
		epoch:      epoch,
		neighbors:  make(map[string][]string, len(sh.adj)),
		egressPort: make(map[edgeKey]int),
		linkDelay:  make(map[edgeKey]time.Duration, len(sh.linkDelay)),
		linkJitter: make(map[edgeKey]time.Duration, len(sh.linkDelay)),
		queueMax:   make(map[portKey]int),
		queueSeen:  make(map[portKey]bool),
		linkRate:   make(map[edgeKey]int64, len(sh.linkRate)),
	}
	nodeSet := make(map[string]bool)
	for from, ports := range sh.adj {
		nodeSet[from] = true
		seen := make(map[string]bool)
		for port, to := range ports {
			nodeSet[to] = true
			v.egressPort[edgeKey{from, to}] = port
			if !seen[to] {
				seen[to] = true
				v.neighbors[from] = append(v.neighbors[from], to)
			}
		}
	}
	for n := range nodeSet {
		v.present = append(v.present, n)
		sort.Strings(v.neighbors[n])
	}
	sort.Strings(v.present)
	for h := range sh.isHost {
		v.hostList = append(v.hostList, h)
	}
	sort.Strings(v.hostList)
	for k, st := range sh.linkDelay {
		v.linkDelay[k] = st.ewma
		v.linkJitter[k] = st.jitter()
	}
	for k, rate := range sh.linkRate {
		v.linkRate[k] = rate
	}
	expireAt := adjDeadline
	for dev, ports := range sh.queues {
		for port, pw := range ports {
			best, found, exp := pw.windowMax(now, window)
			if exp < expireAt {
				expireAt = exp
			}
			if found {
				v.queueMax[portKey{dev, port}] = best
				v.queueSeen[portKey{dev, port}] = true
			}
		}
	}
	v.expireAt = expireAt
	return v
}

// merge composes per-shard views into one immutable Topology: the merged
// sorted node/host index plus the neighbor index arrays the path trees run
// on. Per-edge and per-port state is not copied — lookups delegate to the
// owning shard's view. When store is non-nil the merged structure is
// registered with the incremental SPT store (diffed against the previous
// merge to version path trees); nil keeps trees private to the snapshot.
func (c *Collector) merge(views []*shardView, vector []uint64, now time.Duration, store *sptStore) *Topology {
	total, hostTotal := 0, 0
	for _, v := range views {
		total += len(v.present)
		hostTotal += len(v.hostList)
	}
	nodes := make([]string, 0, total)
	hosts := make([]string, 0, hostTotal)
	for _, v := range views {
		nodes = append(nodes, v.present...)
		hosts = append(hosts, v.hostList...)
	}
	sort.Strings(nodes)
	nodes = dedupSorted(nodes)
	sort.Strings(hosts)
	hosts = dedupSorted(hosts)

	t := &Topology{
		Nodes:       nodes,
		hostList:    hosts,
		views:       views,
		shardOf:     c.shardOf,
		defaultRate: c.cfg.DefaultLinkRateBps,
		TakenAt:     now,
		vector:      vector,
		store:       store,
	}
	for _, e := range vector {
		t.epoch += e
	}
	t.nodeIndex = make(map[string]int32, len(nodes))
	for i, n := range nodes {
		t.nodeIndex[n] = int32(i)
	}
	t.nbrIdx = make([][]int32, len(nodes))
	t.hostFlag = make([]bool, len(nodes))
	for i, n := range nodes {
		t.hostFlag[i] = containsSorted(hosts, n)
		ns := views[c.shardOf(n)].neighbors[n]
		if len(ns) == 0 {
			continue
		}
		row := make([]int32, len(ns))
		for j, nb := range ns {
			row[j] = t.nodeIndex[nb]
		}
		t.nbrIdx[i] = row
	}
	t.initArena()
	if store != nil {
		t.seq = store.advance(nodes, t.nbrIdx, t.hostFlag)
	}
	return t
}

// dedupSorted removes adjacent duplicates from a sorted slice, in place.
func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// containsSorted reports whether sorted xs contains x.
func containsSorted(xs []string, x string) bool {
	i := sort.SearchStrings(xs, x)
	return i < len(xs) && xs[i] == x
}
