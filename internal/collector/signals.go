package collector

import (
	"sort"
	"time"
)

// Controller-facing stream signals. The adaptive probing loop (internal/
// adapt) decides per-stream cadences from collector-side churn evidence:
// how stale each stream is, how often its route moved, whether aging has
// tombstoned any of its edges, and how noisy the queues along its path are.
// StreamSignals assembles that digest without mutating any state — it is a
// pure read, so polling it cannot perturb epochs, snapshots, or digests.

// StreamSignal is the per-stream churn digest consumed by the adaptive
// controller. Probabilistic streams keep no assembled hop sequence between
// reassembly cycles, so their Devices is empty and QueueVar/EvictedOnPath
// are zero; Age, Remaps, and Resets still carry their churn evidence.
type StreamSignal struct {
	Origin, Target string
	// Seq is the highest accepted sequence number; Age is the time since
	// the last accepted probe.
	Seq uint64
	Age time.Duration
	// Remaps counts accepted probes whose hop sequence differed from their
	// predecessor's; Resets counts reassembly buffers discarded because a
	// probe contradicted them. Both are cumulative — controllers react to
	// deltas between evaluations.
	Remaps, Resets uint64
	// Devices are the interior devices (switches) of the stream's last
	// known path, in hop order (a copy — safe to retain).
	Devices []string
	// QueueVar is the maximum sample variance of in-window max-queue
	// reports across Devices, in packets².
	QueueVar float64
	// EvictedOnPath counts path links currently tombstoned by adjacency
	// aging (either direction of a hop pair).
	EvictedOnPath int
}

// sigRow pairs a signal under construction with its stream's full hop
// sequence (including endpoints) for the edge-tombstone pass.
type sigRow struct {
	sig  StreamSignal
	path []string
}

// StreamSignals returns the churn digest of every known probe stream,
// sorted by (origin, target). Locking follows the iterator discipline: the
// stream pass holds one streamMu at a time, the link-state pass afterwards
// holds one mu at a time — never both, never two of either.
func (c *Collector) StreamSignals() []StreamSignal {
	now := c.clock()
	window := c.window()

	// Pass 1: stream metadata, one streamMu at a time.
	var rows []sigRow
	for _, sh := range c.shards {
		sh.streamMu.Lock()
		for key, meta := range sh.streams {
			row := sigRow{sig: StreamSignal{
				Origin: key.origin,
				Target: key.target,
				Seq:    meta.seq,
				Age:    now - meta.at,
				Remaps: meta.remaps,
				Resets: meta.resets,
			}}
			if len(meta.path) > 0 {
				row.path = append([]string(nil), meta.path...)
				if len(meta.path) > 2 {
					row.sig.Devices = row.path[1 : len(row.path)-1]
				}
			}
			rows = append(rows, row)
		}
		sh.streamMu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].sig.Origin != rows[j].sig.Origin {
			return rows[i].sig.Origin < rows[j].sig.Origin
		}
		return rows[i].sig.Target < rows[j].sig.Target
	})

	// Collect the unique devices and directed path edges the rows
	// reference, grouped by owning shard.
	devVar := make(map[string]float64)
	edgeGone := make(map[edgeKey]bool)
	for i := range rows {
		for _, d := range rows[i].sig.Devices {
			devVar[d] = 0
		}
		p := rows[i].path
		for h := 0; h+1 < len(p); h++ {
			edgeGone[edgeKey{p[h], p[h+1]}] = false
			edgeGone[edgeKey{p[h+1], p[h]}] = false
		}
	}
	devByShard := make([][]string, len(c.shards))
	for d := range devVar {
		i := c.shardOf(d)
		devByShard[i] = append(devByShard[i], d)
	}
	edgeByShard := make([][]edgeKey, len(c.shards))
	for e := range edgeGone {
		i := c.shardOf(e.from)
		edgeByShard[i] = append(edgeByShard[i], e)
	}

	// Pass 2: link state, one mu at a time in shard order. Each device's
	// variance folds its ports in sorted order, so the float accumulation
	// order — and therefore the value — is identical run to run.
	for i, sh := range c.shards {
		devs, edges := devByShard[i], edgeByShard[i]
		if len(devs) == 0 && len(edges) == 0 {
			continue
		}
		sort.Strings(devs)
		sh.mu.Lock()
		for _, d := range devs {
			devVar[d] = queueVarianceLocked(sh, d, now, window)
		}
		for _, e := range edges {
			_, gone := sh.evicted[e]
			edgeGone[e] = gone
		}
		sh.mu.Unlock()
	}

	// Aggregate per stream.
	out := make([]StreamSignal, len(rows))
	for i := range rows {
		sig := rows[i].sig
		for _, d := range sig.Devices {
			if v := devVar[d]; v > sig.QueueVar {
				sig.QueueVar = v
			}
		}
		p := rows[i].path
		for h := 0; h+1 < len(p); h++ {
			if edgeGone[edgeKey{p[h], p[h+1]}] || edgeGone[edgeKey{p[h+1], p[h]}] {
				sig.EvictedOnPath++
			}
		}
		out[i] = sig
	}
	return out
}

// queueVarianceLocked computes the sample variance of one device's
// in-window max-queue reports across all its ports, folding ports in
// sorted order (Welford over a deterministic sequence). Callers hold the
// owning shard's mu.
func queueVarianceLocked(sh *shard, device string, now, window time.Duration) float64 {
	ports := sh.queues[device]
	if len(ports) == 0 {
		return 0
	}
	keys := make([]int, 0, len(ports))
	for p := range ports {
		keys = append(keys, p)
	}
	sort.Ints(keys)
	cutoff := now - window
	n := 0
	var mean, m2 float64
	for _, p := range keys {
		w := ports[p]
		for i := range w.reports {
			if w.reports[i].at < cutoff {
				continue
			}
			n++
			x := float64(w.reports[i].maxQueue)
			delta := x - mean
			mean += delta / float64(n)
			m2 += delta * (x - mean)
		}
	}
	if n < 2 {
		return 0
	}
	return m2 / float64(n-1)
}
