package collector

import (
	"sort"
	"time"

	"intsched/internal/telemetry"
)

// Probe ingest. A probe's hop sequence (origin, devices..., target) decides
// which shards it touches: the owners of every node on the path (plus, on a
// route remap, the owners of the old path's nodes, whose edges get
// accelerated aging). HandleProbe serializes per origin shard via streamMu,
// then locks the touched shards' state mutexes in ascending shard order and
// applies exactly the same learning rules as the historical single-mutex
// collector, so a sharded collector's merged state is byte-identical to a
// single-shard one fed the same probes.

// HandleProbe ingests one probe payload synchronously.
func (c *Collector) HandleProbe(p *telemetry.ProbePayload) {
	now := c.clock()
	c.probesReceived.Add(1)
	c.telemetryBytes.Add(uint64(telemetry.EncodedSize(p)))

	os := c.shardFor(p.Origin)
	os.streamMu.Lock()
	defer os.streamMu.Unlock()

	key := probeKey{origin: p.Origin, target: p.Target}
	prevMeta, seen := os.streams[key]
	if seen && p.Seq <= prevMeta.seq {
		// Reordered or duplicate probe: its registers were flushed before
		// the one we already processed; ignore to keep freshness monotone.
		// This gate also sequence-gates reassembly — a retransmitted or
		// stale probe's fragments never reach the merge below.
		c.probesOutOfOrder.Add(1)
		return
	}

	target := p.Target
	if target == "" {
		target = c.self
	}

	if p.Mode == telemetry.ModeProbabilistic {
		// Probabilistic probes carry sampled fragments; merge them through
		// the reassembly stage instead of treating the stack as a full
		// path. Stream metadata still advances so the sequence gate spans
		// mode changes (path stays nil: fragments, not a hop sequence).
		reset := c.reassembleProbe(os, key, p, target, now)
		meta := probeMeta{seq: p.Seq, at: now, remaps: prevMeta.remaps, resets: prevMeta.resets}
		if reset {
			meta.remaps++
			meta.resets++
		}
		os.streams[key] = meta
		return
	}
	if os.reasm != nil {
		// A deterministic probe supersedes any reassembly buffer this
		// stream accumulated while probabilistic (mode flip in a mixed
		// fleet rollout).
		delete(os.reasm, key)
	}
	// Assemble the hop sequence into the origin shard's scratch buffer.
	path := append(os.pathScratch[:0], p.Origin)
	recs := p.Stack.Records
	for i := range recs {
		path = append(path, recs[i].Device)
	}
	path = append(path, target)
	os.pathScratch = path

	remap := seen && !pathEqual(prevMeta.path, path)

	// Lock set: owners of every node on the new path, plus the old path's
	// owners when the route moved (their edges get backdated).
	set := os.lockScratch[:0]
	for _, n := range path {
		set = append(set, c.shardOf(n))
	}
	if remap {
		for _, n := range prevMeta.path {
			set = append(set, c.shardOf(n))
		}
	}
	sort.Ints(set)
	set = dedupInts(set)
	os.lockScratch = set

	for _, i := range set {
		c.shards[i].mu.Lock()
	}
	// Accepted probe: the learned state is about to change, invalidating
	// cached views of every touched shard and every rank result derived
	// from them.
	for _, i := range set {
		c.shards[i].epoch.Add(1)
	}
	c.applyProbeLocked(p, target, now)
	if remap {
		c.pathRemaps.Add(1)
		c.accelerateAgingLocked(prevMeta.path, path, now)
	}
	for i := len(set) - 1; i >= 0; i-- {
		c.shards[set[i]].mu.Unlock()
	}

	meta := probeMeta{seq: p.Seq, at: now, remaps: prevMeta.remaps, resets: prevMeta.resets}
	if remap {
		meta.remaps++
	}
	if seen && !remap {
		meta.path = prevMeta.path // unchanged: reuse, no allocation
	} else {
		meta.path = append([]string(nil), path...)
	}
	os.streams[key] = meta
}

// applyProbeLocked applies one accepted probe's records to the owning
// shards. Callers hold the mu of every shard owning a node on the probe's
// hop sequence.
func (c *Collector) applyProbeLocked(p *telemetry.ProbePayload, target string, now time.Duration) {
	alpha := c.cfg.DelayAlpha
	window := c.window()
	c.shardFor(p.Origin).isHost[p.Origin] = true

	recs := p.Stack.Records
	prev := p.Origin
	prevEgress := 0 // hosts have a single port
	for i := range recs {
		rec := &recs[i]
		c.recordsParsed.Add(1)
		dev := c.shardFor(rec.Device)
		dev.lastReport[rec.Device] = now

		// Topology: prev --(prev's egress port)--> rec.Device, and the
		// reverse direction leaves rec.Device via the probe's ingress
		// port (ports are full duplex).
		c.shardFor(prev).learnEdgeLocked(prev, prevEgress, rec.Device, now)
		dev.learnEdgeLocked(rec.Device, rec.IngressPort, prev, now)

		// Link latency of the hop the probe arrived on; symmetric links
		// seed the reverse direction too (a probe may never traverse it).
		if rec.LinkLatency > 0 || i > 0 {
			c.shardFor(prev).updateDelayLocked(edgeKey{prev, rec.Device}, rec.LinkLatency, now, alpha)
			dev.updateDelayLocked(edgeKey{rec.Device, prev}, rec.LinkLatency, now, alpha)
		}

		// Queue registers flushed by this device.
		if len(rec.Queues) > 0 {
			ports := dev.queues[rec.Device]
			if ports == nil {
				ports = make(map[int]*portWindow)
				dev.queues[rec.Device] = ports
			}
			for _, q := range rec.Queues {
				w := ports[q.Port]
				if w == nil {
					w = &portWindow{}
					ports[q.Port] = w
				}
				w.push(queueReport{at: now, maxQueue: q.MaxQueue, packets: q.Packets})
			}
		}
		dev.pruneQueuesLocked(rec.Device, now, window)

		prev = rec.Device
		prevEgress = rec.EgressPort
	}

	// Final hop: last device -> the probe's target host. Coverage-planned
	// probes may terminate at another edge host that relays the payload;
	// the collector itself measures the latency only when it is the
	// target (otherwise the relay measured it).
	c.shardFor(target).isHost[target] = true
	if len(recs) > 0 {
		last := &recs[len(recs)-1]
		c.shardFor(prev).learnEdgeLocked(prev, prevEgress, target, now)
		c.shardFor(target).learnEdgeLocked(target, 0, prev, now)
		lat := p.LastHopLatency
		if target == c.self {
			lat = now - last.EgressTS
		}
		if lat > 0 {
			c.shardFor(prev).updateDelayLocked(edgeKey{prev, target}, lat, now, alpha)
			c.shardFor(target).updateDelayLocked(edgeKey{target, prev}, lat, now, alpha)
		}
	} else {
		// Direct host-to-host probe (no switches): origin adjacent to the
		// target.
		c.shardFor(p.Origin).learnEdgeLocked(p.Origin, 0, target, now)
		c.shardFor(target).learnEdgeLocked(target, 0, p.Origin, now)
	}
}

func pathEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dedupInts removes adjacent duplicates from a sorted slice, in place.
func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// --- Asynchronous ingest -------------------------------------------------

// StartIngestWorkers switches probe ingest to one bounded queue plus one
// worker goroutine per shard (keyed by probe origin, so each stream stays
// in order). EnqueueProbe then clones payloads into the owning shard's
// queue and drops them — counted by IngestDrops — when the queue is full,
// bounding ingest backpressure on the datagram receive loop. Intended for
// the live daemon; the deterministic simulation keeps the synchronous
// HandleProbe path.
func (c *Collector) StartIngestWorkers(queueLen int) {
	if queueLen <= 0 {
		queueLen = DefaultIngestQueue
	}
	if c.ingest.Load() != nil {
		return
	}
	chs := make([]chan *telemetry.ProbePayload, len(c.shards))
	for i := range chs {
		ch := make(chan *telemetry.ProbePayload, queueLen)
		chs[i] = ch
		c.ingestWG.Add(1)
		go func() {
			defer c.ingestWG.Done()
			for p := range ch {
				c.HandleProbe(p)
			}
		}()
	}
	c.ingest.Store(&chs)
}

// StopIngestWorkers drains and stops the per-shard ingest workers started
// by StartIngestWorkers. Safe to call when workers were never started.
func (c *Collector) StopIngestWorkers() {
	chs := c.ingest.Swap(nil)
	if chs == nil {
		return
	}
	for _, ch := range *chs {
		close(ch)
	}
	c.ingestWG.Wait()
}

// EnqueueProbe hands one probe payload to the asynchronous ingest workers,
// cloning it first (callers may reuse the payload's backing storage, as the
// live daemon's decode loop does). Falls back to synchronous HandleProbe
// when workers are not running. Returns false when the owning shard's queue
// was full and the probe was dropped.
func (c *Collector) EnqueueProbe(p *telemetry.ProbePayload) bool {
	chs := c.ingest.Load()
	if chs == nil {
		c.HandleProbe(p)
		return true
	}
	select {
	case (*chs)[c.shardOf(p.Origin)] <- cloneProbe(p):
		return true
	default:
		c.ingestDrops.Add(1)
		return false
	}
}

// cloneProbe deep-copies a probe payload (records and queue reports).
func cloneProbe(p *telemetry.ProbePayload) *telemetry.ProbePayload {
	cp := *p
	cp.Stack.Records = append([]telemetry.Record(nil), p.Stack.Records...)
	for i := range cp.Stack.Records {
		rec := &cp.Stack.Records[i]
		rec.Queues = append([]telemetry.PortQueue(nil), rec.Queues...)
	}
	return &cp
}
