package collector

import (
	"strings"
	"testing"
	"time"
)

// Aging and live re-mapping tests. QueueWindow is 200 ms throughout, so the
// derived adjacency TTL is DefaultAdjacencyWindows × 200 ms = 1 s.

func TestAdjacencyAgesOutAndPathErrors(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, 5*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
	topo := c.Snapshot()
	if _, err := topo.Path("n1", "sched"); err != nil {
		t.Fatalf("fresh path: %v", err)
	}
	e1 := c.Epoch()

	// Silence past the TTL: the next Snapshot call must evict, and because
	// the eviction rides the expiry-triggered rebuild, the epoch advances.
	clk.now += 1500 * time.Millisecond
	topo = c.Snapshot()
	if c.Epoch() == e1 {
		t.Fatal("epoch did not advance across adjacency eviction")
	}
	if _, err := topo.Path("n1", "sched"); err == nil {
		t.Fatal("Path succeeded over evicted links")
	}
	st := c.Stats()
	if st.AdjacencyEvictions == 0 {
		t.Fatal("no evictions counted")
	}
	ev := c.EvictedEdges()
	if len(ev) == 0 {
		t.Fatal("no tombstones listed")
	}
	found := false
	for _, e := range ev {
		if e.From == "n1" && e.To == "s1" {
			found = true
			if e.Since < 0 {
				t.Errorf("negative tombstone age %v", e.Since)
			}
		}
	}
	if !found {
		t.Fatalf("n1->s1 not tombstoned: %+v", ev)
	}
}

func TestAgingIsPerEdgeAndRelearnClearsTombstone(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	seq := uint64(0)
	probeBoth := func() {
		seq++
		c.HandleProbe(probeFrom("n1", seq, 5*time.Millisecond,
			devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
		c.HandleProbe(probeFrom("n2", seq, 5*time.Millisecond,
			devSpec{id: "s2", in: 0, out: 1, egressTS: clk.now}))
	}
	probeBoth()
	// n1's stream keeps running; n2 goes silent.
	for i := 0; i < 20; i++ {
		clk.now += 100 * time.Millisecond
		seq++
		c.HandleProbe(probeFrom("n1", seq, 5*time.Millisecond,
			devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
	}
	topo := c.Snapshot()
	if _, err := topo.Path("n1", "sched"); err != nil {
		t.Fatalf("live path evicted: %v", err)
	}
	if _, err := topo.Path("n2", "sched"); err == nil {
		t.Fatal("silent path survived 2s of silence with a 1s TTL")
	}
	if len(c.EvictedEdges()) == 0 {
		t.Fatal("no tombstones for the silent branch")
	}

	// The stream resumes: edges relearned, tombstones cleared.
	seq++
	c.HandleProbe(probeFrom("n2", seq, 5*time.Millisecond,
		devSpec{id: "s2", in: 0, out: 1, egressTS: clk.now}))
	topo = c.Snapshot()
	if _, err := topo.Path("n2", "sched"); err != nil {
		t.Fatalf("relearned path: %v", err)
	}
	for _, e := range c.EvictedEdges() {
		if strings.Contains(e.From+e.To, "s2") {
			t.Fatalf("tombstone survived relearn: %+v", e)
		}
	}
}

func TestEvictionHookReportsDetectionLatency(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond, AdjacencyTTL: 500 * time.Millisecond})
	type evt struct {
		from, to string
		silence  time.Duration
	}
	var got []evt
	c.SetEvictionHook(func(from, to string, silence time.Duration) {
		got = append(got, evt{from, to, silence})
	})
	c.HandleProbe(probeFrom("n1", 1, 5*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
	clk.now += 800 * time.Millisecond
	c.Snapshot()
	if len(got) == 0 {
		t.Fatal("hook not invoked")
	}
	for i, e := range got {
		if e.silence != 800*time.Millisecond {
			t.Errorf("eviction %d silence %v, want 800ms", i, e.silence)
		}
		if i > 0 {
			prev := got[i-1]
			if prev.from > e.from || (prev.from == e.from && prev.to > e.to) {
				t.Errorf("hook order not sorted: %+v", got)
			}
		}
	}
}

func TestNoAdjacencyAgingDisablesEviction(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond, AdjacencyTTL: NoAdjacencyAging})
	c.HandleProbe(probeFrom("n1", 1, 5*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
	clk.now += time.Hour
	topo := c.Snapshot()
	if _, err := topo.Path("n1", "sched"); err != nil {
		t.Fatalf("edge evicted with aging disabled: %v", err)
	}
	if c.Stats().AdjacencyEvictions != 0 {
		t.Fatal("evictions counted with aging disabled")
	}
}

func TestChangedHopSequenceAcceleratesAging(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk) // TTL 1s, window 200ms
	c.HandleProbe(probeFrom("n1", 1, 5*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
	// 100 ms later the same stream arrives via s2: the route moved.
	clk.now += 100 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 2, 5*time.Millisecond,
		devSpec{id: "s2", in: 0, out: 1, egressTS: clk.now}))
	if c.Stats().PathRemaps != 1 {
		t.Fatalf("PathRemaps = %d, want 1", c.Stats().PathRemaps)
	}
	// Abandoned edges expire within 2 queue windows (400 ms), far sooner
	// than their natural deadline (900 ms away).
	clk.now += 500 * time.Millisecond
	topo := c.Snapshot()
	if _, err := topo.Path("n1", "sched"); err != nil {
		t.Fatalf("new route evicted: %v", err)
	}
	hasS1 := false
	for _, nb := range topo.Neighbors("s1") {
		_ = nb
		hasS1 = true
	}
	if hasS1 {
		t.Fatalf("abandoned branch still present: neighbors(s1)=%v", topo.Neighbors("s1"))
	}
	// An unchanged hop sequence is not a remap.
	c2 := newTestCollector(clk)
	c2.HandleProbe(probeFrom("n1", 1, 5*time.Millisecond, devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
	c2.HandleProbe(probeFrom("n1", 2, 5*time.Millisecond, devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
	if c2.Stats().PathRemaps != 0 {
		t.Fatalf("stable stream counted as remap")
	}
}

func TestAdjacencyDeadlineDrivesSnapshotExpiry(t *testing.T) {
	// With no queue reports at all, snapshot expiry must still fire at the
	// adjacency deadline: the cached snapshot cannot outlive the first TTL.
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	p := probeFrom("n1", 1, 5*time.Millisecond, devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now})
	c.HandleProbe(p)
	t1 := c.Snapshot()
	clk.now += 300 * time.Millisecond
	if c.Snapshot() != t1 {
		t.Fatal("snapshot rebuilt before any deadline")
	}
	clk.now += 800 * time.Millisecond // 1.1s after the probe: past the TTL
	t2 := c.Snapshot()
	if t2 == t1 {
		t.Fatal("cached snapshot served past the adjacency deadline")
	}
	if len(t2.Nodes) != 0 {
		t.Fatalf("expired snapshot still has nodes %v", t2.Nodes)
	}
}
