package collector

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotPointerIdentityPerEpoch: equal epochs must return the
// identical *Topology — the whole point of epoch-versioned snapshots is
// that readers share one immutable copy until state changes.
func TestSnapshotPointerIdentityPerEpoch(t *testing.T) {
	c, _ := buildDiamond(t)
	e0 := c.Epoch()
	if e0 == 0 {
		t.Fatal("accepted probes did not advance the epoch")
	}
	t1 := c.Snapshot()
	t2 := c.Snapshot()
	if t1 != t2 {
		t.Fatal("same epoch returned distinct snapshot pointers")
	}
	if t1.Epoch() != e0 {
		t.Fatalf("snapshot epoch %d, collector epoch %d", t1.Epoch(), e0)
	}
}

// TestSnapshotRebuildsOnEpochAdvance: an accepted probe must invalidate the
// cached snapshot; the stale pointer keeps its old (immutable) contents.
func TestSnapshotRebuildsOnEpochAdvance(t *testing.T) {
	c, clk := buildDiamond(t)
	old := c.Snapshot()
	oldEpoch := c.Epoch()

	clk.now += 10 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 3, 50*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 60}, egressTS: clk.now},
		devSpec{id: "s2", in: 0, out: 1, egressTS: clk.now},
		devSpec{id: "s4", in: 0, out: 2, egressTS: clk.now}))

	if c.Epoch() <= oldEpoch {
		t.Fatalf("epoch did not advance: %d -> %d", oldEpoch, c.Epoch())
	}
	fresh := c.Snapshot()
	if fresh == old {
		t.Fatal("snapshot not rebuilt after epoch advance")
	}
	if fresh.Epoch() <= old.Epoch() {
		t.Fatalf("fresh snapshot epoch %d not past %d", fresh.Epoch(), old.Epoch())
	}
	// Immutability: the superseded snapshot must not see the new report.
	if q, _ := old.QueueMax("s1", "s2"); q == 60 {
		t.Fatal("old snapshot sees post-snapshot queue report")
	}
	if q, _ := fresh.QueueMax("s1", "s2"); q != 60 {
		t.Fatalf("fresh snapshot queue %d, want 60", q)
	}
}

// TestOutOfOrderProbeDoesNotAdvanceEpoch: dropped probes mutate nothing the
// snapshot can see, so the cached snapshot must survive them.
func TestOutOfOrderProbeDoesNotAdvanceEpoch(t *testing.T) {
	c, clk := buildDiamond(t)
	snap := c.Snapshot()
	epoch := c.Epoch()
	clk.now += time.Millisecond
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond, // seq 1 already superseded by seq 2
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 99}, egressTS: clk.now}))
	if c.Epoch() != epoch {
		t.Fatalf("dropped probe advanced epoch %d -> %d", epoch, c.Epoch())
	}
	if c.Snapshot() != snap {
		t.Fatal("dropped probe invalidated the cached snapshot")
	}
}

// TestSnapshotRebuildsOnQueueWindowExpiry: windowed queue maxima depend on
// the clock, not just the epoch. Once an in-window report ages out, a
// cached snapshot would overstate congestion; Snapshot must rebuild even
// though no probe arrived.
func TestSnapshotRebuildsOnQueueWindowExpiry(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk) // 200 ms queue window
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond,
		devSpec{id: "s1", out: 1, queues: map[int]int{1: 30}, egressTS: clk.now}))
	cached := c.Snapshot()
	if q, ok := cached.QueueMax("s1", "sched"); !ok || q != 30 {
		t.Fatalf("queue %d,%v want 30", q, ok)
	}
	// Still inside the window: cache holds.
	clk.now += 100 * time.Millisecond
	if c.Snapshot() != cached {
		t.Fatal("snapshot rebuilt while report still in window")
	}
	// Past the window: the report expired, a rebuild must drop it.
	clk.now += 150 * time.Millisecond
	fresh := c.Snapshot()
	if fresh == cached {
		t.Fatal("snapshot not rebuilt after queue report expiry")
	}
	if _, ok := fresh.QueueMax("s1", "sched"); ok {
		t.Fatal("expired queue report visible in fresh snapshot")
	}
	// The expiry-driven rebuild must advance the epoch: downstream caches
	// (core.RankCache) invalidate by epoch comparison only, so publishing
	// changed queue maxima under the old epoch would serve stale rankings.
	if fresh.Epoch() <= cached.Epoch() {
		t.Fatalf("expiry rebuild kept epoch %d; equal epochs must mean identical snapshots", fresh.Epoch())
	}
	if c.Epoch() != fresh.Epoch() {
		t.Fatalf("collector epoch %d disagrees with snapshot epoch %d", c.Epoch(), fresh.Epoch())
	}
	// The rebuilt snapshot is cached again.
	if c.Snapshot() != fresh {
		t.Fatal("rebuilt snapshot not cached")
	}
}

// TestConfigChangesAdvanceEpoch: SetLinkRate and SetQueueWindow change what
// snapshots contain, so they must version like probes.
func TestConfigChangesAdvanceEpoch(t *testing.T) {
	c, _ := buildDiamond(t)
	snap := c.Snapshot()
	e := c.Epoch()
	c.SetLinkRate("n1", "s1", 123_000_000)
	if c.Epoch() != e+1 {
		t.Fatalf("SetLinkRate epoch %d, want %d", c.Epoch(), e+1)
	}
	if c.Snapshot() == snap {
		t.Fatal("link-rate change not reflected in a new snapshot")
	}
	if c.Snapshot().LinkRate("n1", "s1") != 123_000_000 {
		t.Fatal("new rate missing")
	}
	e = c.Epoch()
	c.SetQueueWindow(time.Second)
	if c.Epoch() != e+1 {
		t.Fatalf("SetQueueWindow epoch %d, want %d", c.Epoch(), e+1)
	}
}

// TestSnapshotCachingDisabled: the benchmarking escape hatch must restore
// the fresh-copy-per-call behavior while keeping contents equal.
func TestSnapshotCachingDisabled(t *testing.T) {
	c, _ := buildDiamond(t)
	c.SetSnapshotCaching(false)
	a, b := c.Snapshot(), c.Snapshot()
	if a == b {
		t.Fatal("caching disabled but pointers shared")
	}
	if da, _ := a.LinkDelay("n1", "s1"); func() time.Duration { d, _ := b.LinkDelay("n1", "s1"); return d }() != da {
		t.Fatal("uncached snapshots disagree")
	}
	c.SetSnapshotCaching(true)
	x, y := c.Snapshot(), c.Snapshot()
	if x != y {
		t.Fatal("caching re-enabled but snapshots not shared")
	}
}

// TestConcurrentSnapshotReadersWhileProbing exercises the lock-free read
// path under the race detector: many goroutines snapshot and walk paths
// while probes mutate the collector. The clock is atomic because in live
// deployments it is wall-clock-derived and read from many goroutines.
func TestConcurrentSnapshotReadersWhileProbing(t *testing.T) {
	var nowNs atomic.Int64
	nowNs.Store(int64(time.Second))
	advance := func(d time.Duration) { nowNs.Add(int64(d)) }
	c := New("sched", func() time.Duration { return time.Duration(nowNs.Load()) },
		Config{QueueWindow: 200 * time.Millisecond})
	now := func() time.Duration { return time.Duration(nowNs.Load()) }
	c.HandleProbe(probeFrom("n1", 1, 10*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 2, 2: 8}, egressTS: now()},
		devSpec{id: "s2", in: 0, out: 1, egressTS: now()},
		devSpec{id: "s4", in: 0, out: 2, egressTS: now()},
	))
	c.HandleProbe(probeFrom("n1", 2, 10*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 2, egressTS: now()},
		devSpec{id: "s3", in: 0, out: 1, egressTS: now()},
		devSpec{id: "s4", in: 1, out: 2, egressTS: now()},
	))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				topo := c.Snapshot()
				if _, err := topo.Path("n1", "sched"); err != nil {
					t.Error(err)
					return
				}
				topo.QueueMax("s1", "s2")
				topo.Hosts()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		advance(time.Millisecond)
		c.HandleProbe(probeFrom("n1", uint64(3+i), 10*time.Millisecond,
			devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: i % 10}, egressTS: now()},
			devSpec{id: "s2", in: 0, out: 1, egressTS: now()},
			devSpec{id: "s4", in: 0, out: 2, egressTS: now()},
		))
	}
	close(stop)
	wg.Wait()
}
