package collector

import (
	"testing"
	"time"

	"intsched/internal/telemetry"
)

// fakeClock is a settable time source.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) Now() time.Duration { return f.now }

// probeFrom builds a probe payload from origin traversing the given devices
// with uniform link latency and per-device queue reports.
func probeFrom(origin string, seq uint64, linkLat time.Duration, devs ...devSpec) *telemetry.ProbePayload {
	p := &telemetry.ProbePayload{Origin: origin, Seq: seq}
	for _, d := range devs {
		rec := telemetry.Record{
			Device:      d.id,
			IngressPort: d.in,
			EgressPort:  d.out,
			LinkLatency: linkLat,
			EgressTS:    d.egressTS,
		}
		for port, q := range d.queues {
			rec.Queues = append(rec.Queues, telemetry.PortQueue{Port: port, MaxQueue: q, Packets: 10})
		}
		p.Stack.Append(rec)
	}
	return p
}

type devSpec struct {
	id       string
	in, out  int
	queues   map[int]int
	egressTS time.Duration
}

func newTestCollector(clk *fakeClock) *Collector {
	return New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond})
}

func TestTopologyInferenceFromRecordOrder(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, 10*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, egressTS: 990 * time.Millisecond},
		devSpec{id: "s3", in: 2, out: 3, egressTS: 995 * time.Millisecond},
		devSpec{id: "s4", in: 0, out: 1, egressTS: 999 * time.Millisecond},
	))
	topo := c.Snapshot()
	// Paper example: records in s1-s3-s4 order imply s1–s3 and s3–s4.
	pairs := [][2]string{{"n1", "s1"}, {"s1", "s3"}, {"s3", "s4"}, {"s4", "sched"}}
	for _, pr := range pairs {
		found := false
		for _, nb := range topo.Neighbors(pr[0]) {
			if nb == pr[1] {
				found = true
			}
		}
		if !found {
			t.Errorf("edge %s-%s not learned; neighbors(%s)=%v", pr[0], pr[1], pr[0], topo.Neighbors(pr[0]))
		}
	}
	if !topo.IsHost("n1") || !topo.IsHost("sched") {
		t.Error("hosts not marked")
	}
	if topo.IsHost("s3") {
		t.Error("switch marked as host")
	}
}

func TestLinkDelayEWMA(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{DelayAlpha: 0.5})
	for i := 0; i < 5; i++ {
		clk.now += 100 * time.Millisecond
		c.HandleProbe(probeFrom("n1", uint64(i+1), 10*time.Millisecond,
			devSpec{id: "s1", out: 1, egressTS: clk.now - time.Millisecond}))
	}
	d, ok := c.LinkDelay("n1", "s1")
	if !ok {
		t.Fatal("no delay learned")
	}
	if d < 9*time.Millisecond || d > 11*time.Millisecond {
		t.Fatalf("EWMA %v, want ≈10ms", d)
	}
	// Jump the samples to 30ms and verify the EWMA moves toward it.
	for i := 5; i < 10; i++ {
		clk.now += 100 * time.Millisecond
		c.HandleProbe(probeFrom("n1", uint64(i+1), 30*time.Millisecond,
			devSpec{id: "s1", out: 1, egressTS: clk.now - time.Millisecond}))
	}
	d2, _ := c.LinkDelay("n1", "s1")
	if d2 <= d || d2 < 25*time.Millisecond {
		t.Fatalf("EWMA did not track change: %v -> %v", d, d2)
	}
}

func TestQueueWindowMaxAndExpiry(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond,
		devSpec{id: "s1", out: 1, queues: map[int]int{1: 30}, egressTS: clk.now}))
	clk.now += 100 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 2, time.Millisecond,
		devSpec{id: "s1", out: 1, queues: map[int]int{1: 5}, egressTS: clk.now}))
	// Within the 200ms window, the max of both reports (30) wins.
	if q, ok := c.MaxQueue("s1", 1); !ok || q != 30 {
		t.Fatalf("windowed max %d,%v want 30", q, ok)
	}
	// Advance past the first report's window: only 5 remains.
	clk.now += 150 * time.Millisecond
	if q, ok := c.MaxQueue("s1", 1); !ok || q != 5 {
		t.Fatalf("after expiry %d,%v want 5", q, ok)
	}
	// Far future: nothing in window.
	clk.now += time.Hour
	if _, ok := c.MaxQueue("s1", 1); ok {
		t.Fatal("stale queue report still visible")
	}
}

func TestOutOfOrderProbesIgnored(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 5, time.Millisecond,
		devSpec{id: "s1", out: 1, queues: map[int]int{1: 9}, egressTS: clk.now}))
	clk.now += 50 * time.Millisecond
	// Older seq arrives late with a huge queue value: must be dropped.
	c.HandleProbe(probeFrom("n1", 4, time.Millisecond,
		devSpec{id: "s1", out: 1, queues: map[int]int{1: 60}, egressTS: clk.now}))
	if q, _ := c.MaxQueue("s1", 1); q != 9 {
		t.Fatalf("stale probe applied: q=%d", q)
	}
	if got := c.Stats().ProbesOutOfOrder; got != 1 {
		t.Fatalf("out-of-order counter %d", got)
	}
}

func TestDirectHostProbe(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, 0)) // no switches between
	topo := c.Snapshot()
	if _, err := topo.Path("n1", "sched"); err != nil {
		t.Fatalf("no path for directly attached host: %v", err)
	}
}

func TestCoverage(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{StaleAfter: time.Second})
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond,
		devSpec{id: "s1", out: 1, egressTS: clk.now},
		devSpec{id: "s2", out: 1, egressTS: clk.now}))
	clk.now += 500 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 2, time.Millisecond,
		devSpec{id: "s1", out: 1, egressTS: clk.now}))
	clk.now += 700 * time.Millisecond
	rep := c.Coverage()
	if len(rep.Fresh) != 1 || rep.Fresh[0] != "s1" {
		t.Fatalf("fresh %v", rep.Fresh)
	}
	if len(rep.Stale) != 1 || rep.Stale[0] != "s2" {
		t.Fatalf("stale %v", rep.Stale)
	}
	if rep.LastSeen["s2"] != time.Second {
		t.Fatalf("lastSeen %v", rep.LastSeen)
	}
}

func TestSetLinkRateAndTopologyRate(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{DefaultLinkRateBps: 20_000_000})
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond,
		devSpec{id: "s1", out: 1, egressTS: clk.now}))
	c.SetLinkRate("n1", "s1", 100_000_000)
	topo := c.Snapshot()
	if topo.LinkRate("n1", "s1") != 100_000_000 || topo.LinkRate("s1", "n1") != 100_000_000 {
		t.Fatal("override not applied symmetrically")
	}
	if topo.LinkRate("s1", "sched") != 20_000_000 {
		t.Fatal("default rate not used for unconfigured link")
	}
}

func TestLinkJitterTracking(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	// Alternate 8ms and 12ms samples: mean 10ms, sample stddev ≈ 2.07ms.
	for i := 0; i < 10; i++ {
		clk.now += 100 * time.Millisecond
		lat := 8 * time.Millisecond
		if i%2 == 1 {
			lat = 12 * time.Millisecond
		}
		c.HandleProbe(probeFrom("n1", uint64(i+1), lat,
			devSpec{id: "s1", out: 1, egressTS: clk.now - time.Millisecond}))
	}
	j, ok := c.LinkJitter("n1", "s1")
	if !ok {
		t.Fatal("no jitter measured")
	}
	if j < 1500*time.Microsecond || j > 2500*time.Microsecond {
		t.Fatalf("jitter %v, want ≈2.1ms", j)
	}
	// Snapshot carries it too.
	topo := c.Snapshot()
	if got := topo.LinkJitter("n1", "s1"); got != j {
		t.Fatalf("snapshot jitter %v != %v", got, j)
	}
	if topo.LinkJitter("ghost", "s1") != 0 {
		t.Fatal("phantom jitter")
	}
	// Single-sample links report no jitter.
	c2 := newTestCollector(clk)
	c2.HandleProbe(probeFrom("n9", 1, 10*time.Millisecond,
		devSpec{id: "s9", out: 1, egressTS: clk.now}))
	if _, ok := c2.LinkJitter("n9", "s9"); ok {
		t.Fatal("jitter from a single sample")
	}
}
