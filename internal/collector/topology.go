package collector

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Topology is an immutable snapshot of the collector's learned network view,
// used by the ranking algorithms. All lookups are against the snapshot, so a
// ranking pass sees one consistent picture. Snapshots are epoch-versioned
// and shared: the collector returns the same *Topology pointer to every
// caller until its state actually changes, so snapshots must be safe for
// concurrent readers. The only internal mutability is the lazily built
// per-destination shortest-path tree cache, which is guarded by its own
// lock.
type Topology struct {
	// Nodes lists every known node ID (hosts and switches), sorted.
	Nodes []string
	// hosts marks which nodes are hosts.
	hosts map[string]bool
	// hostList caches the sorted host IDs (Hosts returns a copy).
	hostList []string
	// neighbors maps node -> sorted neighbor IDs.
	neighbors map[string][]string
	// egressPort maps (from, to) -> from's egress port toward to.
	egressPort map[edgeKey]int
	// linkDelay maps (from, to) -> EWMA latency estimate.
	linkDelay map[edgeKey]time.Duration
	// linkJitter maps (from, to) -> latency standard deviation.
	linkJitter map[edgeKey]time.Duration
	// queueMax maps (device, port) -> max queue within the window.
	queueMax map[portKey]int
	// queueSeen marks (device, port) pairs with at least one in-window
	// report.
	queueSeen map[portKey]bool
	// linkRate maps (from, to) -> capacity in bps.
	linkRate    map[edgeKey]int64
	defaultRate int64
	// TakenAt is the time the snapshot was built. With snapshot caching it
	// is the time of the last rebuild, not the time of the Snapshot() call
	// that returned it.
	TakenAt time.Duration
	// epoch is the collector epoch this snapshot was built at.
	epoch uint64

	// spt memoizes per-destination shortest-path trees: one BFS from the
	// destination serves Path/HopCount for every source. Built lazily on
	// first use; safe for concurrent readers.
	sptMu sync.RWMutex
	spt   map[string]map[string]string // dst -> node -> next hop toward dst
}

// snapshotCache is the atomically published cached snapshot together with
// its validity bounds: the epoch it was built at and the earliest time at
// which a cached in-window queue report would age out of the queue window
// (after which queue maxima must be recomputed even without new probes).
type snapshotCache struct {
	topo     *Topology
	epoch    uint64
	expireAt time.Duration
}

// neverExpires marks snapshots with no in-window queue reports; they stay
// valid until the epoch advances.
const neverExpires = time.Duration(math.MaxInt64)

// Snapshot returns the current learned topology and link state. The
// returned Topology is immutable and shared: repeated calls return the
// identical pointer until a state-mutating probe/report advances the
// collector's epoch. An in-window queue report aging out of the queue
// window also triggers a rebuild — the windowed maxima changed without a
// new probe — and advances the epoch itself, so a rebuilt snapshot is never
// published under the epoch of a superseded one. The fast path is
// lock-free, so any number of concurrent readers can query while probes are
// being ingested.
func (c *Collector) Snapshot() *Topology {
	now := c.clock()
	if c.noSnapCache.Load() {
		c.mu.Lock()
		defer c.mu.Unlock()
		t, _ := c.buildSnapshotLocked(now, c.epoch.Load())
		return t
	}
	if cached := c.snap.Load(); cached != nil && cached.epoch == c.epoch.Load() && now <= cached.expireAt {
		return cached.topo
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Double-check under the lock: another goroutine may have rebuilt.
	epoch := c.epoch.Load()
	if cached := c.snap.Load(); cached != nil && cached.epoch == epoch {
		if now <= cached.expireAt {
			return cached.topo
		}
		// A queue report aged out of the window with no probe arriving:
		// the windowed maxima changed, so this is a state change like any
		// other. Advance the epoch so the rebuilt snapshot is
		// distinguishable from the expired one and epoch-keyed caches
		// downstream (core.RankCache) invalidate instead of serving
		// rankings computed from the stale maxima.
		epoch = c.epoch.Add(1)
	}
	t, expireAt := c.buildSnapshotLocked(now, epoch)
	c.snap.Store(&snapshotCache{topo: t, epoch: epoch, expireAt: expireAt})
	return t
}

// buildSnapshotLocked deep-copies the collector state into a fresh immutable
// Topology. It returns the snapshot and the earliest time the snapshot's
// view goes stale without new probes (neverExpires if never): the minimum of
// the next in-window queue-report expiry and the next adjacency-TTL
// deadline. Aged-out adjacencies are evicted here, right before the copy, so
// an eviction becomes visible exactly when a snapshot is (re)built — and
// because expiry-triggered rebuilds advance the epoch (see Snapshot), a
// post-eviction snapshot is never published under a pre-eviction epoch.
func (c *Collector) buildSnapshotLocked(now time.Duration, epoch uint64) (*Topology, time.Duration) {
	adjDeadline := c.pruneAdjLocked(now)
	t := &Topology{
		hosts:       make(map[string]bool, len(c.isHost)),
		neighbors:   make(map[string][]string, len(c.adj)),
		egressPort:  make(map[edgeKey]int),
		linkDelay:   make(map[edgeKey]time.Duration, len(c.linkDelay)),
		linkJitter:  make(map[edgeKey]time.Duration, len(c.linkDelay)),
		queueMax:    make(map[portKey]int),
		queueSeen:   make(map[portKey]bool),
		linkRate:    make(map[edgeKey]int64, len(c.linkRate)),
		defaultRate: c.cfg.DefaultLinkRateBps,
		TakenAt:     now,
		epoch:       epoch,
		spt:         make(map[string]map[string]string),
	}
	nodeSet := make(map[string]bool)
	for from, ports := range c.adj {
		nodeSet[from] = true
		seen := make(map[string]bool)
		for port, to := range ports {
			nodeSet[to] = true
			t.egressPort[edgeKey{from, to}] = port
			if !seen[to] {
				seen[to] = true
				t.neighbors[from] = append(t.neighbors[from], to)
			}
		}
	}
	for n := range nodeSet {
		t.Nodes = append(t.Nodes, n)
		sort.Strings(t.neighbors[n])
	}
	sort.Strings(t.Nodes)
	for h := range c.isHost {
		t.hosts[h] = true
		t.hostList = append(t.hostList, h)
	}
	sort.Strings(t.hostList)
	for k, st := range c.linkDelay {
		t.linkDelay[k] = st.ewma
		t.linkJitter[k] = st.jitterLocked()
	}
	for k, rate := range c.linkRate {
		t.linkRate[k] = rate
	}
	expireAt := adjDeadline
	for key, reports := range c.queues {
		best, found, exp := c.windowedQueueMaxLocked(reports, now)
		if exp < expireAt {
			expireAt = exp
		}
		if found {
			t.queueMax[key] = best
			t.queueSeen[key] = true
		}
	}
	return t, expireAt
}

// Epoch returns the collector epoch this snapshot was built at. Two
// snapshots with equal epochs are the same object; ranking results computed
// from a snapshot stay valid exactly while the collector's epoch equals the
// snapshot's.
func (t *Topology) Epoch() uint64 { return t.epoch }

// IsHost reports whether id is a known host.
func (t *Topology) IsHost(id string) bool { return t.hosts[id] }

// Hosts returns all known hosts, sorted.
func (t *Topology) Hosts() []string {
	out := make([]string, len(t.hostList))
	copy(out, t.hostList)
	return out
}

// Neighbors returns the sorted neighbors of id.
func (t *Topology) Neighbors(id string) []string { return t.neighbors[id] }

// EgressPort returns from's egress port toward its direct neighbor to.
func (t *Topology) EgressPort(from, to string) (int, bool) {
	p, ok := t.egressPort[edgeKey{from, to}]
	return p, ok
}

// LinkDelay returns the latency estimate for the directed link from->to.
// Links never measured report ok=false.
func (t *Topology) LinkDelay(from, to string) (time.Duration, bool) {
	d, ok := t.linkDelay[edgeKey{from, to}]
	return d, ok
}

// LinkJitter returns the latency standard deviation for the directed link
// from->to (0 with fewer than two samples).
func (t *Topology) LinkJitter(from, to string) time.Duration {
	return t.linkJitter[edgeKey{from, to}]
}

// LinkRate returns the assumed capacity of the directed link from->to.
func (t *Topology) LinkRate(from, to string) int64 {
	if r, ok := t.linkRate[edgeKey{from, to}]; ok {
		return r
	}
	return t.defaultRate
}

// QueueMax returns the windowed maximum queue occupancy of the egress port
// on from feeding the link from->to. The boolean reports whether the port
// had an in-window report.
func (t *Topology) QueueMax(from, to string) (int, bool) {
	port, ok := t.egressPort[edgeKey{from, to}]
	if !ok {
		return 0, false
	}
	key := portKey{from, port}
	if !t.queueSeen[key] {
		return 0, false
	}
	return t.queueMax[key], true
}

// destTree returns the shortest-path tree toward dst: for every node that
// can reach dst, the next hop on the BFS shortest path (lexicographic
// tie-breaking over sorted neighbors, hosts never forwarding transit
// traffic — the same deterministic rule as netsim.ComputeRoutes). The tree
// is built once per destination and memoized, so one BFS serves Path and
// HopCount lookups from every source.
func (t *Topology) destTree(dst string) map[string]string {
	t.sptMu.RLock()
	tree, ok := t.spt[dst]
	t.sptMu.RUnlock()
	if ok {
		return tree
	}
	t.sptMu.Lock()
	defer t.sptMu.Unlock()
	if tree, ok := t.spt[dst]; ok {
		return tree
	}
	tree = make(map[string]string)
	visited := map[string]bool{dst: true}
	frontier := []string{dst}
	for len(frontier) > 0 {
		var nextFrontier []string
		for _, cur := range frontier {
			for _, nb := range t.neighbors[cur] {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				tree[nb] = cur
				if !(t.hosts[nb] && nb != dst) {
					nextFrontier = append(nextFrontier, nb)
				}
			}
		}
		frontier = nextFrontier
	}
	t.spt[dst] = tree
	return tree
}

// Path returns the hop sequence (including endpoints) from src to dst along
// BFS shortest paths, by walking the memoized per-destination tree. Hosts
// never forward transit traffic; a malformed tree that would route through
// a host mid-path (or reference an unknown node) yields a defensive error
// instead of looping.
func (t *Topology) Path(src, dst string) ([]string, error) {
	if src == dst {
		return []string{src}, nil
	}
	if _, ok := t.neighbors[src]; !ok {
		return nil, fmt.Errorf("collector: unknown node %q in learned topology", src)
	}
	tree := t.destTree(dst)
	if _, ok := tree[src]; !ok {
		return nil, fmt.Errorf("collector: no learned path from %q to %q", src, dst)
	}
	path := []string{src}
	cur := src
	for cur != dst {
		if cur != src && t.hosts[cur] {
			return nil, fmt.Errorf("collector: learned path from %q to %q transits host %q (hosts do not forward)", src, dst, cur)
		}
		nxt, ok := tree[cur]
		if !ok {
			return nil, fmt.Errorf("collector: learned path from %q to %q breaks at unknown node %q", src, dst, cur)
		}
		cur = nxt
		path = append(path, cur)
		if len(path) > len(t.Nodes)+1 {
			return nil, fmt.Errorf("collector: path loop from %q to %q", src, dst)
		}
	}
	return path, nil
}

// HopCount returns the number of links on the learned path src->dst.
func (t *Topology) HopCount(src, dst string) (int, error) {
	p, err := t.Path(src, dst)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}
