package collector

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Topology is an immutable snapshot of the collector's learned network view,
// used by the ranking algorithms. All lookups are against the snapshot, so a
// ranking pass sees one consistent picture. Snapshots are epoch-versioned
// and shared: the collector returns the same *Topology pointer to every
// caller until its state actually changes, so snapshots must be safe for
// concurrent readers.
//
// A Topology is a merge-on-read composition of per-shard views: the merged
// sorted node list, the host index, and the neighbor index arrays (the
// structure path trees run on) are materialized at merge time; the heavy
// per-edge and per-port maps stay inside the per-shard views and lookups
// delegate to the owning view. The only internal mutability is the
// shortest-path tree state, which is guarded by its own locks (the shared
// incremental store, or the private scratch memo for superseded snapshots).
type Topology struct {
	// Nodes lists every known node ID (hosts and switches), sorted; its
	// index order is the coordinate system of nbrIdx, hostFlag, and the
	// path trees (index order == lexicographic order).
	Nodes []string
	// nodeIndex maps node ID -> index in Nodes.
	nodeIndex map[string]int32
	// nbrIdx maps node index -> ascending neighbor indices (equivalently:
	// lexicographically sorted neighbors).
	nbrIdx [][]int32
	// hostFlag marks which node indices are hosts.
	hostFlag []bool
	// hostList caches the sorted host IDs (Hosts returns a copy). It can
	// include hosts with no current adjacency (absent from Nodes).
	hostList []string
	// hostIdx maps hostList positions to node indices (-1 for hosts with
	// no current adjacency). Built by initArena.
	hostIdx []int32

	// CSR edge-metric arena (see arena.go): nbrFlat is the concatenation
	// of the nbrIdx rows (which re-alias it), edgeStart[i]..edgeStart[i+1]
	// spans node i's row, and the dir* arrays hold per-direction metrics at
	// slots 2e (forward) and 2e+1 (reverse) of CSR edge e.
	edgeStart  []int32
	nbrFlat    []int32
	dirDelay   []time.Duration
	dirDelayOK []bool
	dirJitter  []time.Duration
	dirRate    []int64
	dirQueue   []int32
	dirQueueOK []bool
	// views are the per-shard state views this snapshot composes; shardOf
	// routes a node ID to its owning view. Both are nil in hand-crafted
	// test topologies, where delegated lookups simply miss.
	views   []*shardView
	shardOf func(string) int
	// defaultRate is the assumed capacity of unconfigured links.
	defaultRate int64
	// TakenAt is the time the snapshot was built. With snapshot caching it
	// is the time of the last rebuild, not the time of the Snapshot() call
	// that returned it.
	TakenAt time.Duration
	// epoch is the sum of the composite epoch vector — monotone, and
	// strictly increasing across any state change, so downstream
	// epoch-keyed caches keep the PR 1 invalidation contract. vector holds
	// the per-shard epochs this snapshot was built at.
	epoch  uint64
	vector []uint64

	// seq and store version the merged structure for incremental
	// shortest-path-tree maintenance (see spt.go); store is nil for
	// uncached and hand-crafted topologies.
	seq   uint64
	store *sptStore
	// scratch memoizes per-destination trees privately when store is nil
	// or has advanced past seq.
	scratchMu sync.Mutex
	scratch   map[string]*destTree
}

// Epoch returns the collector epoch this snapshot was built at (the sum of
// the per-shard epoch vector). Two snapshots with equal epochs are the same
// object; ranking results computed from a snapshot stay valid exactly while
// the collector's epoch equals the snapshot's.
func (t *Topology) Epoch() uint64 { return t.epoch }

// EpochVector returns a copy of the composite per-shard epoch vector this
// snapshot was built at. A mutation in one partition moves only that
// shard's entry.
func (t *Topology) EpochVector() []uint64 {
	return append([]uint64(nil), t.vector...)
}

// IsHost reports whether id is a known host. Nodes in the merged adjacency
// answer from the flat host-flag array; hosts with no current adjacency
// (absent from Nodes) fall back to the sorted host list.
func (t *Topology) IsHost(id string) bool {
	if i, ok := t.nodeIndex[id]; ok {
		return t.hostFlag[i]
	}
	return containsSorted(t.hostList, id)
}

// Hosts returns all known hosts, sorted.
func (t *Topology) Hosts() []string {
	out := make([]string, len(t.hostList))
	copy(out, t.hostList)
	return out
}

// view returns the shard view owning id (nil in crafted test topologies).
func (t *Topology) view(id string) *shardView {
	if t.shardOf == nil {
		return nil
	}
	return t.views[t.shardOf(id)]
}

// Neighbors returns the sorted neighbors of id.
func (t *Topology) Neighbors(id string) []string {
	v := t.view(id)
	if v == nil {
		return nil
	}
	return v.neighbors[id]
}

// EgressPort returns from's egress port toward its direct neighbor to.
func (t *Topology) EgressPort(from, to string) (int, bool) {
	v := t.view(from)
	if v == nil {
		return 0, false
	}
	p, ok := v.egressPort[edgeKey{from, to}]
	return p, ok
}

// LinkDelay returns the latency estimate for the directed link from->to.
// Links never measured report ok=false.
func (t *Topology) LinkDelay(from, to string) (time.Duration, bool) {
	v := t.view(from)
	if v == nil {
		return 0, false
	}
	d, ok := v.linkDelay[edgeKey{from, to}]
	return d, ok
}

// LinkJitter returns the latency standard deviation for the directed link
// from->to (0 with fewer than two samples).
func (t *Topology) LinkJitter(from, to string) time.Duration {
	v := t.view(from)
	if v == nil {
		return 0
	}
	return v.linkJitter[edgeKey{from, to}]
}

// LinkRate returns the assumed capacity of the directed link from->to.
func (t *Topology) LinkRate(from, to string) int64 {
	if v := t.view(from); v != nil {
		if r, ok := v.linkRate[edgeKey{from, to}]; ok {
			return r
		}
	}
	return t.defaultRate
}

// QueueMax returns the windowed maximum queue occupancy of the egress port
// on from feeding the link from->to. The boolean reports whether the port
// had an in-window report.
func (t *Topology) QueueMax(from, to string) (int, bool) {
	v := t.view(from)
	if v == nil {
		return 0, false
	}
	port, ok := v.egressPort[edgeKey{from, to}]
	if !ok {
		return 0, false
	}
	key := portKey{from, port}
	if !v.queueSeen[key] {
		return 0, false
	}
	return v.queueMax[key], true
}

// Path returns the hop sequence (including endpoints) from src to dst along
// BFS shortest paths, by walking the per-destination tree (incrementally
// maintained across snapshots; see spt.go). Hosts never forward transit
// traffic; a malformed tree that would route through a host mid-path (or
// reference an unknown node) yields a defensive error instead of looping.
func (t *Topology) Path(src, dst string) ([]string, error) {
	if src == dst {
		return []string{src}, nil
	}
	isrc, ok := t.nodeIndex[src]
	if !ok {
		return nil, fmt.Errorf("collector: unknown node %q in learned topology", src)
	}
	idst, ok := t.nodeIndex[dst]
	if !ok {
		idst = -1
	}
	p, code, at := t.PathInto(isrc, idst, nil)
	switch code {
	case PathOK:
		path := make([]string, len(p))
		for i, n := range p {
			path[i] = t.Nodes[n]
		}
		return path, nil
	case PathUnknownSrc:
		return nil, fmt.Errorf("collector: unknown node %q in learned topology", src)
	case PathNoRoute:
		return nil, fmt.Errorf("collector: no learned path from %q to %q", src, dst)
	case PathHostTransit:
		return nil, fmt.Errorf("collector: learned path from %q to %q transits host %q (hosts do not forward)", src, dst, t.Nodes[at])
	case PathBroken:
		return nil, fmt.Errorf("collector: learned path from %q to %q breaks at unknown node %q", src, dst, t.Nodes[at])
	default:
		return nil, fmt.Errorf("collector: path loop from %q to %q", src, dst)
	}
}

// HopCount returns the number of links on the learned path src->dst.
func (t *Topology) HopCount(src, dst string) (int, error) {
	p, err := t.Path(src, dst)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

// sortedKeys returns the sorted keys of a string-keyed bool map (test and
// crafted-topology helper).
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
