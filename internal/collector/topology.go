package collector

import (
	"fmt"
	"sort"
	"time"
)

// Topology is an immutable snapshot of the collector's learned network view,
// used by the ranking algorithms. All lookups are against the snapshot, so a
// ranking pass sees one consistent picture.
type Topology struct {
	// Nodes lists every known node ID (hosts and switches), sorted.
	Nodes []string
	// hosts marks which nodes are hosts.
	hosts map[string]bool
	// neighbors maps node -> sorted neighbor IDs.
	neighbors map[string][]string
	// egressPort maps (from, to) -> from's egress port toward to.
	egressPort map[edgeKey]int
	// linkDelay maps (from, to) -> EWMA latency estimate.
	linkDelay map[edgeKey]time.Duration
	// linkJitter maps (from, to) -> latency standard deviation.
	linkJitter map[edgeKey]time.Duration
	// queueMax maps (device, port) -> max queue within the window.
	queueMax map[portKey]int
	// queueSeen marks (device, port) pairs with at least one in-window
	// report.
	queueSeen map[portKey]bool
	// linkRate maps (from, to) -> capacity in bps.
	linkRate    map[edgeKey]int64
	defaultRate int64
	// TakenAt is the snapshot time.
	TakenAt time.Duration
}

// Snapshot captures the current learned topology and link state.
func (c *Collector) Snapshot() *Topology {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()

	t := &Topology{
		hosts:       make(map[string]bool, len(c.isHost)),
		neighbors:   make(map[string][]string, len(c.adj)),
		egressPort:  make(map[edgeKey]int),
		linkDelay:   make(map[edgeKey]time.Duration, len(c.linkDelay)),
		linkJitter:  make(map[edgeKey]time.Duration, len(c.linkDelay)),
		queueMax:    make(map[portKey]int),
		queueSeen:   make(map[portKey]bool),
		linkRate:    make(map[edgeKey]int64, len(c.linkRate)),
		defaultRate: c.cfg.DefaultLinkRateBps,
		TakenAt:     now,
	}
	nodeSet := make(map[string]bool)
	for from, ports := range c.adj {
		nodeSet[from] = true
		seen := make(map[string]bool)
		for port, to := range ports {
			nodeSet[to] = true
			t.egressPort[edgeKey{from, to}] = port
			if !seen[to] {
				seen[to] = true
				t.neighbors[from] = append(t.neighbors[from], to)
			}
		}
	}
	for n := range nodeSet {
		t.Nodes = append(t.Nodes, n)
		sort.Strings(t.neighbors[n])
	}
	sort.Strings(t.Nodes)
	for h := range c.isHost {
		t.hosts[h] = true
	}
	for k, st := range c.linkDelay {
		t.linkDelay[k] = st.ewma
		t.linkJitter[k] = st.jitterLocked()
	}
	for k, rate := range c.linkRate {
		t.linkRate[k] = rate
	}
	for key := range c.queues {
		if q, ok := c.maxQueueLocked(key.device, key.port, now); ok {
			t.queueMax[key] = q
			t.queueSeen[key] = true
		}
	}
	return t
}

// IsHost reports whether id is a known host.
func (t *Topology) IsHost(id string) bool { return t.hosts[id] }

// Hosts returns all known hosts, sorted.
func (t *Topology) Hosts() []string {
	var out []string
	for h := range t.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Neighbors returns the sorted neighbors of id.
func (t *Topology) Neighbors(id string) []string { return t.neighbors[id] }

// EgressPort returns from's egress port toward its direct neighbor to.
func (t *Topology) EgressPort(from, to string) (int, bool) {
	p, ok := t.egressPort[edgeKey{from, to}]
	return p, ok
}

// LinkDelay returns the latency estimate for the directed link from->to.
// Links never measured report ok=false.
func (t *Topology) LinkDelay(from, to string) (time.Duration, bool) {
	d, ok := t.linkDelay[edgeKey{from, to}]
	return d, ok
}

// LinkJitter returns the latency standard deviation for the directed link
// from->to (0 with fewer than two samples).
func (t *Topology) LinkJitter(from, to string) time.Duration {
	return t.linkJitter[edgeKey{from, to}]
}

// LinkRate returns the assumed capacity of the directed link from->to.
func (t *Topology) LinkRate(from, to string) int64 {
	if r, ok := t.linkRate[edgeKey{from, to}]; ok {
		return r
	}
	return t.defaultRate
}

// QueueMax returns the windowed maximum queue occupancy of the egress port
// on from feeding the link from->to. The boolean reports whether the port
// had an in-window report.
func (t *Topology) QueueMax(from, to string) (int, bool) {
	port, ok := t.egressPort[edgeKey{from, to}]
	if !ok {
		return 0, false
	}
	key := portKey{from, port}
	if !t.queueSeen[key] {
		return 0, false
	}
	return t.queueMax[key], true
}

// Path returns the hop sequence (including endpoints) from src to dst using
// breadth-first shortest paths with lexicographic tie-breaking over sorted
// neighbors — the same deterministic rule the simulator's routing uses, so
// the scheduler's estimate walks the links traffic will actually take.
// Hosts never forward transit traffic.
func (t *Topology) Path(src, dst string) ([]string, error) {
	if src == dst {
		return []string{src}, nil
	}
	if _, ok := t.neighbors[src]; !ok {
		return nil, fmt.Errorf("collector: unknown node %q in learned topology", src)
	}
	// BFS from dst so each node learns its next hop toward dst, mirroring
	// netsim.ComputeRoutes.
	next := map[string]string{}
	visited := map[string]bool{dst: true}
	frontier := []string{dst}
	for len(frontier) > 0 {
		var nextFrontier []string
		for _, cur := range frontier {
			for _, nb := range t.neighbors[cur] {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				next[nb] = cur
				if !(t.hosts[nb] && nb != dst) {
					nextFrontier = append(nextFrontier, nb)
				}
			}
		}
		frontier = nextFrontier
	}
	if _, ok := next[src]; !ok {
		return nil, fmt.Errorf("collector: no learned path from %q to %q", src, dst)
	}
	path := []string{src}
	cur := src
	for cur != dst {
		cur = next[cur]
		path = append(path, cur)
		if len(path) > len(t.Nodes)+1 {
			return nil, fmt.Errorf("collector: path loop from %q to %q", src, dst)
		}
	}
	return path, nil
}

// HopCount returns the number of links on the learned path src->dst.
func (t *Topology) HopCount(src, dst string) (int, error) {
	p, err := t.Path(src, dst)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}
