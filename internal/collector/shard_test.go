package collector

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"intsched/internal/telemetry"
)

// Tests for the sharded link-state database: composite epoch vector
// isolation, sharded/single-shard content equivalence, and concurrent
// cross-shard ingest under the race detector.

// twoPartition maps the "a-side" nodes (n1, s1, sched) to shard 0 and the
// "b-side" nodes (n2, s2, m2) to shard 1.
func twoPartition(node string) int {
	switch node {
	case "n2", "s2", "m2":
		return 1
	}
	return 0
}

// TestCompositeEpochVectorIsolation: a link evict/restore confined to one
// partition must move only that shard's epoch vector entry.
func TestCompositeEpochVectorIsolation(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{
		QueueWindow: 200 * time.Millisecond, // derived TTL: 1 s
		Shards:      2,
		Partition:   twoPartition,
	})
	// Stream A stays inside shard 0 (n1 -> s1 -> sched); stream B stays
	// inside shard 1 (n2 -> s2 -> m2, a relayed coverage probe).
	probeA := func(seq uint64) {
		c.HandleProbe(probeFrom("n1", seq, 5*time.Millisecond,
			devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now}))
	}
	probeB := func(seq uint64) {
		p := probeFrom("n2", seq, 5*time.Millisecond,
			devSpec{id: "s2", in: 0, out: 1, egressTS: clk.now})
		p.Target = "m2"
		p.LastHopLatency = 3 * time.Millisecond
		c.HandleProbe(p)
	}
	probeA(1)
	probeB(1)

	// A probe confined to shard 1 moves only vector entry 1.
	before := c.EpochVector()
	clk.now += 100 * time.Millisecond
	probeB(2)
	after := c.EpochVector()
	if after[0] != before[0] {
		t.Fatalf("shard-1 probe moved shard-0 epoch: %v -> %v", before, after)
	}
	if after[1] != before[1]+1 {
		t.Fatalf("shard-1 probe epoch delta: %v -> %v", before, after)
	}

	// Keep stream A alive, let stream B go silent past its TTL. The
	// eviction rides shard 1's expiry-triggered view rebuild; shard 0's
	// view rebuilds too (stream A advanced its epoch) but must not take
	// an extra expiry bump.
	clk.now += 300 * time.Millisecond // 1.4s
	probeA(2)
	c.Snapshot() // cache both shard views at the current epochs
	before = c.EpochVector()
	clk.now += 750 * time.Millisecond // 2.15s: B's edges (seen 1.1s) are past TTL
	topo := c.Snapshot()
	after = c.EpochVector()
	if after[0] != before[0] {
		t.Fatalf("shard-1 eviction moved shard-0 epoch: %v -> %v", before, after)
	}
	if after[1] != before[1]+1 {
		t.Fatalf("eviction epoch delta on shard 1: %v -> %v", before, after)
	}
	if _, err := topo.Path("n2", "m2"); err == nil {
		t.Fatal("evicted branch still routable")
	}
	if _, err := topo.Path("n1", "sched"); err != nil {
		t.Fatalf("live branch lost: %v", err)
	}
	if got := topo.EpochVector(); !vectorEqual(got, after) {
		t.Fatalf("snapshot vector %v, collector vector %v", got, after)
	}

	// Restore: relearning the branch is again confined to shard 1.
	before = after
	probeB(3)
	after = c.EpochVector()
	if after[0] != before[0] || after[1] != before[1]+1 {
		t.Fatalf("restore epoch delta: %v -> %v", before, after)
	}
	if _, err := c.Snapshot().Path("n2", "m2"); err != nil {
		t.Fatalf("restored branch unroutable: %v", err)
	}
}

// feedScript drives one collector through a scripted mix of probes, queue
// reports, remaps, config changes, and aging, using its own clock.
func feedScript(c *Collector, clk *fakeClock) {
	probe := func(origin string, seq uint64, lat time.Duration, devs ...devSpec) {
		c.HandleProbe(probeFrom(origin, seq, lat, devs...))
	}
	probe("n1", 1, 10*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 2, 2: 8}, egressTS: clk.now},
		devSpec{id: "s2", in: 0, out: 1, egressTS: clk.now},
		devSpec{id: "s4", in: 0, out: 2, egressTS: clk.now})
	clk.now += 10 * time.Millisecond
	probe("n1", 2, 10*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 2, queues: map[int]int{1: 3}, egressTS: clk.now},
		devSpec{id: "s3", in: 0, out: 1, egressTS: clk.now},
		devSpec{id: "s4", in: 1, out: 2, egressTS: clk.now})
	clk.now += 10 * time.Millisecond
	probe("n2", 1, 7*time.Millisecond,
		devSpec{id: "s3", in: 2, out: 1, queues: map[int]int{1: 5}, egressTS: clk.now},
		devSpec{id: "s4", in: 1, out: 2, egressTS: clk.now})
	c.SetLinkRate("n1", "s1", 100_000_000)
	// Remap stream n2 onto s2 and let the abandoned s3 edges age out.
	clk.now += 100 * time.Millisecond
	probe("n2", 2, 7*time.Millisecond,
		devSpec{id: "s2", in: 2, out: 1, egressTS: clk.now},
		devSpec{id: "s4", in: 0, out: 2, egressTS: clk.now})
	clk.now += 450 * time.Millisecond
	probe("n1", 3, 12*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 6}, egressTS: clk.now},
		devSpec{id: "s2", in: 0, out: 1, egressTS: clk.now},
		devSpec{id: "s4", in: 0, out: 2, egressTS: clk.now})
	probe("n2", 3, 7*time.Millisecond,
		devSpec{id: "s2", in: 2, out: 1, egressTS: clk.now},
		devSpec{id: "s4", in: 0, out: 2, egressTS: clk.now})
}

// TestShardedSnapshotMatchesSingleShard: the same probe script must produce
// content-identical snapshots at any shard count — sharding is a
// concurrency/invalidations structure, never a semantic one.
func TestShardedSnapshotMatchesSingleShard(t *testing.T) {
	build := func(shards int) *Topology {
		clk := &fakeClock{now: time.Second}
		c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond, Shards: shards})
		feedScript(c, clk)
		return c.Snapshot()
	}
	ref := build(1)
	for _, shards := range []int{2, 3, 8} {
		got := build(shards)
		if !stringsEqual(ref.Nodes, got.Nodes) {
			t.Fatalf("shards=%d nodes %v != %v", shards, got.Nodes, ref.Nodes)
		}
		if !stringsEqual(ref.Hosts(), got.Hosts()) {
			t.Fatalf("shards=%d hosts %v != %v", shards, got.Hosts(), ref.Hosts())
		}
		for _, a := range ref.Nodes {
			if !stringsEqual(ref.Neighbors(a), got.Neighbors(a)) {
				t.Fatalf("shards=%d neighbors(%s) %v != %v", shards, a, got.Neighbors(a), ref.Neighbors(a))
			}
			for _, b := range ref.Nodes {
				rd, rok := ref.LinkDelay(a, b)
				gd, gok := got.LinkDelay(a, b)
				if rd != gd || rok != gok {
					t.Fatalf("shards=%d delay(%s,%s) %v,%v != %v,%v", shards, a, b, gd, gok, rd, rok)
				}
				if ref.LinkJitter(a, b) != got.LinkJitter(a, b) {
					t.Fatalf("shards=%d jitter(%s,%s) differs", shards, a, b)
				}
				if ref.LinkRate(a, b) != got.LinkRate(a, b) {
					t.Fatalf("shards=%d rate(%s,%s) differs", shards, a, b)
				}
				rq, rok2 := ref.QueueMax(a, b)
				gq, gok2 := got.QueueMax(a, b)
				if rq != gq || rok2 != gok2 {
					t.Fatalf("shards=%d queue(%s,%s) %d,%v != %d,%v", shards, a, b, gq, gok2, rq, rok2)
				}
				rp, rerr := ref.Path(a, b)
				gp, gerr := got.Path(a, b)
				if (rerr == nil) != (gerr == nil) || (rerr == nil && !stringsEqual(rp, gp)) {
					t.Fatalf("shards=%d path(%s,%s) %v,%v != %v,%v", shards, a, b, gp, gerr, rp, rerr)
				}
			}
		}
	}
}

// TestShardMergeRaceUnderConcurrentIngest: cross-shard probes from many
// goroutines while readers snapshot, walk paths, and read every reporting
// surface. Run under -race (the CI pool-race job does).
func TestShardMergeRaceUnderConcurrentIngest(t *testing.T) {
	var nowNs atomic.Int64
	nowNs.Store(int64(time.Second))
	c := New("sched", func() time.Duration { return time.Duration(nowNs.Load()) },
		Config{QueueWindow: 200 * time.Millisecond, Shards: 4})
	now := func() time.Duration { return time.Duration(nowNs.Load()) }

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			origin := fmt.Sprintf("n%d", w)
			// All writers traverse the shared core s0, so lock sets
			// constantly cross shards.
			for i := 0; i < 300; i++ {
				nowNs.Add(int64(time.Millisecond))
				c.HandleProbe(probeFrom(origin, uint64(i+1), 5*time.Millisecond,
					devSpec{id: fmt.Sprintf("s%d", w+1), in: 0, out: 1, queues: map[int]int{1: i % 7}, egressTS: now()},
					devSpec{id: "s0", in: w, out: 9, egressTS: now()}))
			}
		}()
	}
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				topo := c.Snapshot()
				for _, h := range topo.Hosts() {
					if h == "sched" {
						continue
					}
					_, _ = topo.Path(h, "sched")
				}
				topo.QueueMax("s0", "sched")
				topo.EpochVector()
				c.Stats()
				c.EvictedEdges()
				c.ProbeStreams()
				c.Coverage()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	topo := c.Snapshot()
	for w := 0; w < writers; w++ {
		if _, err := topo.Path(fmt.Sprintf("n%d", w), "sched"); err != nil {
			t.Fatalf("writer %d path: %v", w, err)
		}
	}
	if got := c.Stats().ProbesReceived; got != writers*300 {
		t.Fatalf("probes received %d, want %d", got, writers*300)
	}
}

// TestAsyncIngestWorkers: the per-shard ingest queues must preserve stream
// order, clone payloads (callers reuse them), and count drops instead of
// blocking when a queue fills.
func TestAsyncIngestWorkers(t *testing.T) {
	var nowNs atomic.Int64
	nowNs.Store(int64(time.Second))
	c := New("sched", func() time.Duration { return time.Duration(nowNs.Load()) },
		Config{QueueWindow: time.Hour, Shards: 2})
	c.StartIngestWorkers(64)

	// Reuse one payload object across sends, as the live datagram loop does.
	var reused telemetry.ProbePayload
	for i := 0; i < 50; i++ {
		reused = telemetry.ProbePayload{Origin: "n1", Seq: uint64(i + 1)}
		reused.Stack.Append(telemetry.Record{Device: "s1", EgressPort: 1,
			LinkLatency: 5 * time.Millisecond,
			Queues:      []telemetry.PortQueue{{Port: 1, MaxQueue: i, Packets: 1}}})
		c.EnqueueProbe(&reused)
	}
	c.StopIngestWorkers()
	if got := c.Stats().ProbesReceived; got != 50 {
		t.Fatalf("async ingest received %d, want 50", got)
	}
	if got := c.Stats().ProbesOutOfOrder; got != 0 {
		t.Fatalf("async ingest reordered a single stream: %d", got)
	}
	if q, ok := c.MaxQueue("s1", 1); !ok || q != 49 {
		t.Fatalf("windowed max %d,%v want 49 (payload clone corrupted?)", q, ok)
	}
	// After StopIngestWorkers, EnqueueProbe falls back to synchronous.
	p := telemetry.ProbePayload{Origin: "n1", Seq: 51}
	p.Stack.Append(telemetry.Record{Device: "s1", EgressPort: 1, LinkLatency: time.Millisecond})
	if !c.EnqueueProbe(&p) {
		t.Fatal("synchronous fallback dropped a probe")
	}
	if got := c.Stats().ProbesReceived; got != 51 {
		t.Fatalf("fallback not ingested: %d", got)
	}
}
