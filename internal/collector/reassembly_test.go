package collector

import (
	"testing"
	"time"

	"intsched/internal/telemetry"
)

// fragSpec describes one sampled hop fragment of a probabilistic probe.
type fragSpec struct {
	hop      int
	id       string
	in, out  int
	link     time.Duration
	egressTS time.Duration
	queues   []telemetry.PortQueue
}

// pintProbe builds a probabilistic probe declaring hops total hops and
// carrying the given sampled fragments.
func pintProbe(origin string, seq uint64, hops int, frags ...fragSpec) *telemetry.ProbePayload {
	p := &telemetry.ProbePayload{
		Origin:     origin,
		Seq:        seq,
		Mode:       telemetry.ModeProbabilistic,
		SampleRate: telemetry.RateToWire(0.5),
		HopCount:   hops,
	}
	for _, f := range frags {
		p.Stack.Append(telemetry.Record{
			Device:      f.id,
			HopIndex:    f.hop,
			IngressPort: f.in,
			EgressPort:  f.out,
			LinkLatency: f.link,
			EgressTS:    f.egressTS,
			Queues:      f.queues,
		})
	}
	return p
}

func neighborSet(c *Collector, node string) map[string]bool {
	out := make(map[string]bool)
	for _, nb := range c.Snapshot().Neighbors(node) {
		out[nb] = true
	}
	return out
}

// TestReassemblyMergesFragments checks successive partial probes assemble
// the full path: a hop unseen so far is a gap (its edges unknown), and the
// probe that samples it completes the picture.
func TestReassemblyMergesFragments(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)

	// Path n1 -> s1 -> s2 -> sched; first probe samples only hop 0.
	c.HandleProbe(pintProbe("n1", 1, 2,
		fragSpec{hop: 0, id: "s1", in: 0, out: 1, egressTS: 990 * time.Millisecond}))
	if nb := neighborSet(c, "n1"); !nb["s1"] {
		t.Fatalf("origin edge not learned from first fragment: %v", nb)
	}
	if nb := neighborSet(c, "s1"); nb["s2"] {
		t.Fatal("edge to an unsampled hop invented")
	}
	if nb := neighborSet(c, "sched"); len(nb) != 0 {
		t.Fatalf("target edge invented before the last hop was sampled: %v", nb)
	}

	// Second probe samples only hop 1: the buffered hop 0 supplies the
	// upstream neighbor, and the target edge completes.
	clk.now += 100 * time.Millisecond
	c.HandleProbe(pintProbe("n1", 2, 2,
		fragSpec{hop: 1, id: "s2", in: 2, out: 3, link: 5 * time.Millisecond,
			egressTS: clk.now - 2*time.Millisecond,
			queues:   []telemetry.PortQueue{{Port: 3, MaxQueue: 9, Packets: 4}}}))
	if nb := neighborSet(c, "s1"); !nb["s2"] {
		t.Fatalf("gap edge not learned after second fragment: %v", nb)
	}
	if nb := neighborSet(c, "sched"); !nb["s2"] {
		t.Fatalf("target edge not learned: %v", nb)
	}
	if d, ok := c.LinkDelay("s1", "s2"); !ok || d != 5*time.Millisecond {
		t.Fatalf("link delay s1->s2 = %v, %v", d, ok)
	}
	if d, ok := c.LinkDelay("s2", "sched"); !ok || d != 2*time.Millisecond {
		t.Fatalf("last-hop delay s2->sched = %v, %v", d, ok)
	}
	if mq, ok := c.MaxQueue("s2", 3); !ok || mq != 9 {
		t.Fatalf("queue report lost in reassembly: %d, %v", mq, ok)
	}

	st := c.Stats()
	if st.RecordsReassembled != 2 || st.RecordsParsed != 2 {
		t.Fatalf("reassembled=%d parsed=%d, want 2/2", st.RecordsReassembled, st.RecordsParsed)
	}
	if st.ReassemblyCompletions != 1 {
		t.Fatalf("completions=%d, want 1 (both hops reported once)", st.ReassemblyCompletions)
	}
	if st.ReassemblyResets != 0 {
		t.Fatalf("unexpected resets: %d", st.ReassemblyResets)
	}
}

// TestReassemblyDuplicateFragment checks a retransmitted probe (same
// sequence number) is sequence-gated before reassembly: its fragments never
// merge twice and never overwrite newer state.
func TestReassemblyDuplicateFragment(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)

	probe := pintProbe("n1", 5, 2,
		fragSpec{hop: 0, id: "s1", out: 1, egressTS: clk.now})
	c.HandleProbe(probe)

	// A newer probe updates hop 0's egress port, then the retransmission
	// of the old probe arrives late.
	clk.now += 50 * time.Millisecond
	c.HandleProbe(pintProbe("n1", 6, 2,
		fragSpec{hop: 0, id: "s1", out: 7, egressTS: clk.now}))
	clk.now += 10 * time.Millisecond
	dup := pintProbe("n1", 5, 2,
		fragSpec{hop: 0, id: "s1", out: 1, egressTS: clk.now})
	c.HandleProbe(dup)

	st := c.Stats()
	if st.ProbesOutOfOrder != 1 {
		t.Fatalf("out-of-order=%d, want 1", st.ProbesOutOfOrder)
	}
	if st.RecordsReassembled != 2 {
		t.Fatalf("reassembled=%d, want 2 (duplicate must not merge)", st.RecordsReassembled)
	}
	// The buffered fragment must still be the newer probe's.
	sh := c.shardFor("n1")
	sh.streamMu.Lock()
	frag := sh.reasm[probeKey{origin: "n1"}].frags[0]
	sh.streamMu.Unlock()
	if frag.seq != 6 || frag.rec.EgressPort != 7 {
		t.Fatalf("stale fragment overwrote newer state: seq=%d out=%d", frag.seq, frag.rec.EgressPort)
	}
}

// TestReassemblyFragmentAfterEviction checks a fragment arriving after
// adjacency aging evicted its edges relearns them cleanly (tombstones
// cleared), and that a probe's arrival keep-alives buffered hops that were
// not re-sampled.
func TestReassemblyFragmentAfterEviction(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond})

	c.HandleProbe(pintProbe("n1", 1, 2,
		fragSpec{hop: 0, id: "s1", out: 1, egressTS: clk.now},
		fragSpec{hop: 1, id: "s2", in: 2, out: 3, egressTS: clk.now}))
	if len(c.EvictedEdges()) != 0 {
		t.Fatal("premature evictions")
	}

	// Silence beyond the adjacency TTL (5 windows = 1s) evicts everything.
	clk.now += 3 * time.Second
	c.Snapshot()
	if len(c.EvictedEdges()) == 0 {
		t.Fatal("edges not evicted after probe silence")
	}

	// A fragment for hop 0 arrives after the eviction: it must relearn its
	// own edges, and the probe's arrival vouches for the buffered hop 1,
	// keeping the rest of the path alive too.
	c.HandleProbe(pintProbe("n1", 2, 2,
		fragSpec{hop: 0, id: "s1", out: 1, egressTS: clk.now}))
	if got := c.EvictedEdges(); len(got) != 0 {
		t.Fatalf("tombstones not cleared after relearn: %v", got)
	}
	for _, pr := range [][2]string{{"n1", "s1"}, {"s1", "s2"}, {"s2", "sched"}} {
		if nb := neighborSet(c, pr[0]); !nb[pr[1]] {
			t.Fatalf("edge %s-%s not relearned: %v", pr[0], pr[1], nb)
		}
	}
}

// TestReassemblyPathChangeResets checks a fragment contradicting the buffer
// (device change at a hop, or a changed hop count) resets reassembly and
// puts the abandoned edges on accelerated aging.
func TestReassemblyPathChangeResets(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond})

	c.HandleProbe(pintProbe("n1", 1, 2,
		fragSpec{hop: 0, id: "s1", out: 1, egressTS: clk.now},
		fragSpec{hop: 1, id: "s2", in: 2, out: 3, egressTS: clk.now}))

	// The route moves: hop 0 now reports a different device.
	clk.now += 100 * time.Millisecond
	c.HandleProbe(pintProbe("n1", 2, 2,
		fragSpec{hop: 0, id: "s9", out: 1, egressTS: clk.now}))
	st := c.Stats()
	if st.ReassemblyResets != 1 || st.PathRemaps != 1 {
		t.Fatalf("resets=%d remaps=%d, want 1/1", st.ReassemblyResets, st.PathRemaps)
	}
	if nb := neighborSet(c, "n1"); !nb["s9"] {
		t.Fatalf("new path not learned after reset: %v", nb)
	}

	// Accelerated aging: within two queue windows the abandoned s1/s2
	// edges expire while the relearned n1-s9 edge survives.
	clk.now += 500 * time.Millisecond
	c.Snapshot()
	evicted := make(map[string]bool)
	for _, e := range c.EvictedEdges() {
		evicted[e.From+">"+e.To] = true
	}
	if !evicted["s1>s2"] || !evicted["s2>sched"] {
		t.Fatalf("abandoned edges not on accelerated aging: %v", c.EvictedEdges())
	}
	if evicted["n1>s9"] {
		t.Fatal("fresh edge caught by accelerated aging")
	}

	// A changed hop count also resets.
	clk.now += 10 * time.Millisecond
	c.HandleProbe(pintProbe("n1", 3, 3,
		fragSpec{hop: 0, id: "s9", out: 1, egressTS: clk.now}))
	if got := c.Stats().ReassemblyResets; got != 2 {
		t.Fatalf("resets=%d after hop-count change, want 2", got)
	}
}

// TestReassemblyFullRateMatchesDeterministic feeds two collectors the same
// probe stream — one deterministic, one probabilistic with every hop present
// (what a p=1.0 sampler produces) — and requires identical learned state and
// epochs: the acceptance criterion's byte-identity at the collector layer.
func TestReassemblyFullRateMatchesDeterministic(t *testing.T) {
	clkA := &fakeClock{now: time.Second}
	clkB := &fakeClock{now: time.Second}
	det := New("sched", clkA.Now, Config{QueueWindow: 200 * time.Millisecond})
	prob := New("sched", clkB.Now, Config{QueueWindow: 200 * time.Millisecond})

	devs := []devSpec{
		{id: "s1", in: 0, out: 1, queues: map[int]int{1: 4}, egressTS: 990 * time.Millisecond},
		{id: "s2", in: 2, out: 3, queues: map[int]int{3: 11}, egressTS: 995 * time.Millisecond},
		{id: "s3", in: 0, out: 2, queues: map[int]int{2: 0}, egressTS: 999 * time.Millisecond},
	}
	for seq := uint64(1); seq <= 5; seq++ {
		d := probeFrom("n1", seq, 7*time.Millisecond, devs...)
		d.HopCount = len(devs)
		for i := range d.Stack.Records {
			d.Stack.Records[i].HopIndex = i
		}
		p := probeFrom("n1", seq, 7*time.Millisecond, devs...)
		p.Mode = telemetry.ModeProbabilistic
		p.SampleRate = telemetry.RateToWire(1.0)
		p.HopCount = len(devs)
		for i := range p.Stack.Records {
			p.Stack.Records[i].HopIndex = i
		}
		det.HandleProbe(d)
		prob.HandleProbe(p)
		clkA.now += 100 * time.Millisecond
		clkB.now += 100 * time.Millisecond
		// Vary an egress timestamp so last-hop delays stay non-trivial.
		devs[2].egressTS += 100 * time.Millisecond
	}

	if a, b := det.Stats().RecordsParsed, prob.Stats().RecordsParsed; a != b {
		t.Fatalf("records parsed differ: det=%d prob=%d", a, b)
	}
	if a, b := det.Epoch(), prob.Epoch(); a != b {
		t.Fatalf("epochs differ: det=%d prob=%d", a, b)
	}
	nodes := []string{"n1", "s1", "s2", "s3", "sched"}
	for _, n := range nodes {
		a, b := neighborSet(det, n), neighborSet(prob, n)
		if len(a) != len(b) {
			t.Fatalf("neighbors of %s differ: det=%v prob=%v", n, a, b)
		}
		for nb := range a {
			if !b[nb] {
				t.Fatalf("neighbors of %s differ: det=%v prob=%v", n, a, b)
			}
		}
		for _, m := range nodes {
			da, oka := det.LinkDelay(n, m)
			db, okb := prob.LinkDelay(n, m)
			if oka != okb || da != db {
				t.Fatalf("link delay %s->%s differs: det=%v/%v prob=%v/%v", n, m, da, oka, db, okb)
			}
		}
	}
	for _, d := range devs {
		for port := range d.queues {
			ma, oka := det.MaxQueue(d.id, port)
			mb, okb := prob.MaxQueue(d.id, port)
			if oka != okb || ma != mb {
				t.Fatalf("max queue %s:%d differs: det=%d/%v prob=%d/%v", d.id, port, ma, oka, mb, okb)
			}
		}
	}
}

// TestReassemblyCompletionHook checks the reassembly hook fires when the
// last missing hop reports, with the cycle's elapsed time.
func TestReassemblyCompletionHook(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	type completion struct {
		origin, target string
		hops           int
		latency        time.Duration
	}
	var got []completion
	c.SetReassemblyHook(func(origin, target string, hops int, latency time.Duration) {
		got = append(got, completion{origin, target, hops, latency})
	})

	c.HandleProbe(pintProbe("n1", 1, 2,
		fragSpec{hop: 0, id: "s1", out: 1, egressTS: clk.now}))
	if len(got) != 0 {
		t.Fatal("hook fired before the path completed")
	}
	clk.now += 300 * time.Millisecond
	c.HandleProbe(pintProbe("n1", 2, 2,
		fragSpec{hop: 1, id: "s2", in: 2, out: 3, egressTS: clk.now}))
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	if got[0].origin != "n1" || got[0].target != "sched" || got[0].hops != 2 {
		t.Fatalf("completion %+v", got[0])
	}
	if got[0].latency != 300*time.Millisecond {
		t.Fatalf("cycle latency %v, want 300ms", got[0].latency)
	}
}

// TestReassemblyModeFlip checks a deterministic probe supersedes the
// stream's reassembly buffer, so a fleet rolling between modes never mixes
// fragment state with full paths.
func TestReassemblyModeFlip(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)

	c.HandleProbe(pintProbe("n1", 1, 2,
		fragSpec{hop: 0, id: "s1", out: 1, egressTS: clk.now}))
	sh := c.shardFor("n1")
	sh.streamMu.Lock()
	_, buffered := sh.reasm[probeKey{origin: "n1"}]
	sh.streamMu.Unlock()
	if !buffered {
		t.Fatal("no reassembly buffer after probabilistic probe")
	}

	clk.now += 100 * time.Millisecond
	d := probeFrom("n1", 2, 5*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now},
		devSpec{id: "s2", in: 2, out: 3, egressTS: clk.now})
	c.HandleProbe(d)
	sh.streamMu.Lock()
	_, buffered = sh.reasm[probeKey{origin: "n1"}]
	sh.streamMu.Unlock()
	if buffered {
		t.Fatal("reassembly buffer survived a deterministic probe")
	}
}
