package collector

import (
	"sort"
	"time"
)

// portWindow holds one (device, port)'s queue reports together with a
// monotonic deque over them, so the windowed maximum is read off the deque
// front instead of rescanning every in-window report on each view rebuild.
//
// Invariants (maintained under the owning shard's mu):
//   - reports is ascending by report time (probe clocks are monotone; a
//     defensively handled out-of-order push re-sorts and rebuilds);
//   - deque is a subsequence of reports, ascending by time and strictly
//     descending by maxQueue, and always contains the newest report: any
//     report dominated by a later, larger-or-equal one can never be the
//     window maximum again and is dropped at push time.
//
// Each report is pushed and popped at most once across its lifetime, so
// view rebuilds cost O(reports) amortized plus one binary search for the
// in-window boundary — versus the previous O(in-window reports) rescan per
// rebuild. windowedQueueMax (shard.go) remains the reference definition of
// the cutoff/boundary rule; TestPortWindowMatchesScan holds the two equal.
type portWindow struct {
	reports []queueReport
	deque   []queueReport
}

// push appends a new report and maintains the deque invariant.
func (w *portWindow) push(r queueReport) {
	if n := len(w.reports); n > 0 && r.at < w.reports[n-1].at {
		// Out-of-order report (defensive: clocks are monotone in both sim
		// and live ingest). Insert at the sorted position and rebuild.
		i := sort.Search(n, func(k int) bool { return w.reports[k].at > r.at })
		w.reports = append(w.reports, queueReport{})
		copy(w.reports[i+1:], w.reports[i:])
		w.reports[i] = r
		w.rebuildDeque()
		return
	}
	w.reports = append(w.reports, r)
	for len(w.deque) > 0 && w.deque[len(w.deque)-1].maxQueue <= r.maxQueue {
		w.deque = w.deque[:len(w.deque)-1]
	}
	w.deque = append(w.deque, r)
}

// windowMax returns the same triple as windowedQueueMax over the window
// ending at now: the in-window maximum occupancy, whether any in-window
// report exists, and when the earliest in-window report ages out
// (neverExpires if none). Stale deque entries are popped as a side effect.
func (w *portWindow) windowMax(now, window time.Duration) (best int, found bool, expireAt time.Duration) {
	if w == nil {
		return 0, false, neverExpires
	}
	cutoff := now - window
	for len(w.deque) > 0 && w.deque[0].at < cutoff {
		w.deque = w.deque[1:]
	}
	i := sort.Search(len(w.reports), func(k int) bool { return w.reports[k].at >= cutoff })
	if i == len(w.reports) {
		return 0, false, neverExpires
	}
	// The newest report is always in the deque and is in-window here, so
	// the deque is non-empty. The scan floors at zero; mirror it.
	if q := w.deque[0].maxQueue; q > 0 {
		best = q
	}
	return best, true, w.reports[i].at + window
}

// prune drops reports that aged out of the window ending at now. It
// reports whether any in-window reports remain (an empty window can be
// dropped from the port map entirely).
func (w *portWindow) prune(now, window time.Duration) bool {
	cutoff := now - window
	i := 0
	for i < len(w.reports) && w.reports[i].at < cutoff {
		i++
	}
	if i > 0 {
		w.reports = append(w.reports[:0:0], w.reports[i:]...)
		for len(w.deque) > 0 && w.deque[0].at < cutoff {
			w.deque = w.deque[1:]
		}
	}
	return len(w.reports) > 0
}

// rebuildDeque reconstructs the monotonic deque from the reports slice.
func (w *portWindow) rebuildDeque() {
	w.deque = w.deque[:0]
	for _, r := range w.reports {
		for len(w.deque) > 0 && w.deque[len(w.deque)-1].maxQueue <= r.maxQueue {
			w.deque = w.deque[:len(w.deque)-1]
		}
		w.deque = append(w.deque, r)
	}
}
