// Package collector implements the scheduler-side telemetry collector: it
// parses INT probe packets, infers the network topology from the order of
// INT records (consecutive records identify adjacent devices), and maintains
// a link-state database of measured link latencies and per-port maximum
// queue occupancies.
//
// The collector is deliberately independent of the simulator's ground-truth
// topology: everything the scheduler knows, it learned from probes — exactly
// the information a real INT deployment would have.
package collector

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
)

// Config tunes the collector.
type Config struct {
	// QueueWindow is how long a flushed max-queue report stays eligible
	// when computing the current per-port maximum. The paper ranks on the
	// "maximum observed queue size in the last probing interval"; use
	// roughly 2× the probing interval so in-flight jitter cannot open
	// coverage gaps. Zero means DefaultQueueWindow.
	QueueWindow time.Duration
	// DelayAlpha is the EWMA weight for new link-latency samples in
	// (0, 1]. Zero means DefaultDelayAlpha.
	DelayAlpha float64
	// DefaultLinkRateBps is the assumed capacity of links whose rate the
	// operator has not configured; bandwidth ranking needs capacities.
	// Zero means DefaultLinkRate.
	DefaultLinkRateBps int64
	// StaleAfter marks devices whose last report is older than this as
	// stale in Coverage reports. Zero means DefaultStaleAfter.
	StaleAfter time.Duration
	// AdjacencyTTL is how long a learned adjacency survives without a
	// probe re-confirming it before it is evicted from snapshots (the live
	// re-mapping that lets the topology track link failures). Zero derives
	// the TTL from the queue window — DefaultAdjacencyWindows × QueueWindow,
	// tracking SetQueueWindow — mirroring the in-window queue-report expiry;
	// NoAdjacencyAging disables eviction entirely (the historical
	// learn-only behavior, needed when telemetry arrives on data packets
	// with no periodic refresh).
	AdjacencyTTL time.Duration
}

// Defaults for Config.
const (
	DefaultQueueWindow = 200 * time.Millisecond
	DefaultDelayAlpha  = 0.3
	DefaultLinkRate    = 20_000_000 // 20 Mbps, the paper's effective link rate
	DefaultStaleAfter  = 2 * time.Second
	// DefaultAdjacencyWindows scales the queue window into the default
	// adjacency TTL. Five windows is ~10 probe intervals at the
	// experiment's 2×interval window: long enough that a couple of lost
	// probes cannot tear a live link out of the map, short enough that a
	// dead link disappears within about a second of real failure.
	DefaultAdjacencyWindows = 5
)

// NoAdjacencyAging disables adjacency eviction when set as
// Config.AdjacencyTTL: learned edges live forever.
const NoAdjacencyAging = time.Duration(-1)

func (c Config) withDefaults() Config {
	if c.QueueWindow <= 0 {
		c.QueueWindow = DefaultQueueWindow
	}
	if c.DelayAlpha <= 0 || c.DelayAlpha > 1 {
		c.DelayAlpha = DefaultDelayAlpha
	}
	if c.DefaultLinkRateBps <= 0 {
		c.DefaultLinkRateBps = DefaultLinkRate
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = DefaultStaleAfter
	}
	return c
}

type edgeKey struct{ from, to string }

type portKey struct {
	device string
	port   int
}

type queueReport struct {
	at       time.Duration
	maxQueue int
	packets  uint32
}

type linkState struct {
	ewma       time.Duration
	lastSample time.Duration
	samples    uint64
	updatedAt  time.Duration
	// Welford accumulators for jitter (sample standard deviation); the
	// paper probes link latency periodically precisely "to capture jitter
	// characteristics".
	mean float64
	m2   float64
}

// Collector builds and maintains the scheduler's view of the network.
type Collector struct {
	self  string
	clock func() time.Duration
	cfg   Config

	mu sync.Mutex

	// adj maps device -> egress port -> neighbor, learned from record
	// order; hosts appear as devices with a single implicit port 0.
	adj map[string]map[int]string
	// adjSeen maps each directed learned edge to the last time a probe
	// confirmed it; edges silent longer than the adjacency TTL are evicted
	// at the next snapshot build.
	adjSeen map[edgeKey]time.Duration
	// evicted tombstones edges removed by aging (edge -> eviction time),
	// cleared when a probe relearns the edge. Health reporting lists these
	// as the links the collector currently believes are gone.
	evicted map[edgeKey]time.Duration
	// isHost marks nodes known to be hosts (probe origins + the collector
	// itself); everything else that reports INT records is a switch.
	isHost map[string]bool
	// pathScratch is the reusable buffer HandleProbe assembles the probe's
	// hop sequence into (kept allocation-free on the steady path).
	pathScratch []string
	// onEviction, when set, observes each adjacency eviction with the
	// edge's probe silence at eviction time (the detection latency).
	onEviction func(from, to string, silence time.Duration)

	linkDelay map[edgeKey]*linkState
	linkRate  map[edgeKey]int64

	queues     map[portKey][]queueReport
	lastReport map[string]time.Duration // device -> last INT record time
	lastProbe  map[probeKey]probeMeta   // (origin, target) -> latest probe metadata

	// epoch counts state-mutating updates (accepted probes, link-rate and
	// queue-window changes). Snapshots are versioned by it: readers can
	// tell "nothing changed since my snapshot" by comparing epochs without
	// taking the lock. Incremented under mu, read lock-free.
	epoch atomic.Uint64
	// snap is the published cached snapshot (nil until first Snapshot).
	snap atomic.Pointer[snapshotCache]
	// noSnapCache forces Snapshot to rebuild on every call (the
	// pre-caching behavior), for before/after benchmarking.
	noSnapCache atomic.Bool

	// Stats (guarded by mu; read via Stats()).
	probesReceived   uint64
	probesOutOfOrder uint64
	recordsParsed    uint64
	adjEvictions     uint64
	pathRemaps       uint64
}

// Stats is a snapshot of the collector's ingestion counters.
type Stats struct {
	// ProbesReceived counts ingested probe payloads.
	ProbesReceived uint64
	// ProbesOutOfOrder counts probes dropped for stale sequence numbers.
	ProbesOutOfOrder uint64
	// RecordsParsed counts INT records processed.
	RecordsParsed uint64
	// AdjacencyEvictions counts learned edges aged out of the topology.
	AdjacencyEvictions uint64
	// PathRemaps counts probe streams that arrived with a changed hop
	// sequence (the route under the stream moved).
	PathRemaps uint64
}

// Stats returns the ingestion counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		ProbesReceived:     c.probesReceived,
		ProbesOutOfOrder:   c.probesOutOfOrder,
		RecordsParsed:      c.recordsParsed,
		AdjacencyEvictions: c.adjEvictions,
		PathRemaps:         c.pathRemaps,
	}
}

type probeMeta struct {
	seq uint64
	at  time.Duration
	// path is the hop sequence (origin, devices..., target) of the last
	// accepted probe; a change means the route under the stream moved.
	path []string
}

// ProbeStream reports the freshness of one probe stream — the (origin,
// target) sequence space a probing host maintains. Target is "" for streams
// probing the collector itself. The observability health model derives
// per-edge probe liveness from these.
type ProbeStream struct {
	Origin, Target string
	// Seq is the highest accepted sequence number.
	Seq uint64
	// Age is the time since the last accepted probe of this stream.
	Age time.Duration
}

// ProbeStreams lists every known probe stream with its freshness, sorted by
// (origin, target).
func (c *Collector) ProbeStreams() []ProbeStream {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ProbeStream, 0, len(c.lastProbe))
	for key, meta := range c.lastProbe {
		out = append(out, ProbeStream{
			Origin: key.origin,
			Target: key.target,
			Seq:    meta.seq,
			Age:    now - meta.at,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// QueueWindow returns the configured queue-report freshness window.
func (c *Collector) QueueWindow() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.QueueWindow
}

// probeKey identifies one probe stream: a host may probe several targets
// (coverage-planned routes), each with its own sequence space.
type probeKey struct {
	origin, target string
}

// New creates a collector for the scheduler host self. clock supplies the
// current time (virtual in simulation, wall-clock in live mode).
func New(self netsim.NodeID, clock func() time.Duration, cfg Config) *Collector {
	return &Collector{
		self:       string(self),
		clock:      clock,
		cfg:        cfg.withDefaults(),
		adj:        make(map[string]map[int]string),
		adjSeen:    make(map[edgeKey]time.Duration),
		evicted:    make(map[edgeKey]time.Duration),
		isHost:     map[string]bool{string(self): true},
		linkDelay:  make(map[edgeKey]*linkState),
		linkRate:   make(map[edgeKey]int64),
		queues:     make(map[portKey][]queueReport),
		lastReport: make(map[string]time.Duration),
		lastProbe:  make(map[probeKey]probeMeta),
	}
}

// Self returns the collector's own host ID.
func (c *Collector) Self() netsim.NodeID { return netsim.NodeID(c.self) }

// Epoch returns the collector's current state version. It advances on every
// accepted probe and configuration change, and when Snapshot detects that a
// queue report aged out of the queue window (windowed maxima changed without
// a probe); equal epochs guarantee that Snapshot returns the identical
// topology.
func (c *Collector) Epoch() uint64 { return c.epoch.Load() }

// SetSnapshotCaching toggles snapshot reuse. Caching is on by default;
// disabling it forces every Snapshot call to rebuild a fresh deep copy (the
// pre-epoch behavior), which exists for before/after benchmarking and
// debugging only. With caching off, queue-window aging no longer advances
// the epoch (two same-epoch snapshots can then differ), so pair it with
// ServiceConfig.DisableRankCache as the qps experiment does.
func (c *Collector) SetSnapshotCaching(enabled bool) { c.noSnapCache.Store(!enabled) }

// SetQueueWindow adjusts the queue-report window, typically to track a
// changed probing interval (Fig 9 sweeps).
func (c *Collector) SetQueueWindow(w time.Duration) {
	if w <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.QueueWindow = w
	c.epoch.Add(1)
}

// SetLinkRate records the capacity of the directed link from->to. Both
// directions are set (links are full duplex and symmetric in this system).
func (c *Collector) SetLinkRate(from, to netsim.NodeID, rateBps int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.linkRate[edgeKey{string(from), string(to)}] = rateBps
	c.linkRate[edgeKey{string(to), string(from)}] = rateBps
	c.epoch.Add(1)
}

// Bind installs the collector as the probe handler of the scheduler host's
// transport stack. It also chains into the stack's control handler so that
// INT reports relayed by probe-sink hosts (coverage-planned probes that
// terminated elsewhere) are ingested too.
func (c *Collector) Bind(stack *transport.Stack) {
	stack.ProbeHandler = func(pkt *netsim.Packet) {
		if pkt.Probe != nil {
			c.HandleProbe(pkt.Probe)
		}
	}
	prev := stack.ControlHandler
	stack.ControlHandler = func(from netsim.NodeID, payload any) {
		if p, ok := payload.(*telemetry.ProbePayload); ok {
			c.HandleProbe(p)
			return
		}
		if prev != nil {
			prev(from, payload)
		}
	}
}

// HandleProbe ingests one probe payload.
func (c *Collector) HandleProbe(p *telemetry.ProbePayload) {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()

	c.probesReceived++
	key := probeKey{origin: p.Origin, target: p.Target}
	if meta, ok := c.lastProbe[key]; ok && p.Seq <= meta.seq {
		// Reordered or duplicate probe: its registers were flushed before
		// the one we already processed; ignore to keep freshness monotone.
		c.probesOutOfOrder++
		return
	}
	// Accepted probe: the learned state is about to change, invalidating
	// cached snapshots and every rank result derived from them.
	c.epoch.Add(1)
	c.isHost[p.Origin] = true
	c.pathScratch = append(c.pathScratch[:0], p.Origin)

	recs := p.Stack.Records
	prev := p.Origin
	prevEgress := 0 // hosts have a single port
	for i := range recs {
		rec := &recs[i]
		c.recordsParsed++
		c.lastReport[rec.Device] = now
		c.pathScratch = append(c.pathScratch, rec.Device)

		// Topology: prev --(prev's egress port)--> rec.Device, and the
		// reverse direction leaves rec.Device via the probe's ingress
		// port (ports are full duplex).
		c.learnEdge(prev, prevEgress, rec.Device, now)
		c.learnEdge(rec.Device, rec.IngressPort, prev, now)

		// Link latency of the hop the probe arrived on.
		if rec.LinkLatency > 0 || i > 0 {
			c.updateDelay(edgeKey{prev, rec.Device}, rec.LinkLatency, now)
			// Symmetric links: seed the reverse direction too (a probe
			// may never traverse it).
			c.updateDelay(edgeKey{rec.Device, prev}, rec.LinkLatency, now)
		}

		// Queue registers flushed by this device.
		for _, q := range rec.Queues {
			key := portKey{rec.Device, q.Port}
			c.queues[key] = append(c.queues[key], queueReport{at: now, maxQueue: q.MaxQueue, packets: q.Packets})
		}
		c.pruneQueuesLocked(rec.Device, now)

		prev = rec.Device
		prevEgress = rec.EgressPort
	}

	// Final hop: last device -> the probe's target host. Coverage-planned
	// probes may terminate at another edge host that relays the payload;
	// the collector itself measures the latency only when it is the
	// target (otherwise the relay measured it).
	target := p.Target
	if target == "" {
		target = c.self
	}
	c.isHost[target] = true
	if len(recs) > 0 {
		last := &recs[len(recs)-1]
		c.learnEdge(prev, prevEgress, target, now)
		c.learnEdge(target, 0, prev, now)
		lat := p.LastHopLatency
		if target == c.self {
			lat = now - last.EgressTS
		}
		if lat > 0 {
			c.updateDelay(edgeKey{prev, target}, lat, now)
			c.updateDelay(edgeKey{target, prev}, lat, now)
		}
	} else {
		// Direct host-to-host probe (no switches): origin adjacent to the
		// target.
		c.learnEdge(p.Origin, 0, target, now)
		c.learnEdge(target, 0, p.Origin, now)
	}
	c.pathScratch = append(c.pathScratch, target)

	// Live re-mapping: if this stream's hop sequence changed, the route
	// underneath it moved. Edges only the old path used are put on
	// accelerated aging so the map converges to the new route within a
	// couple of queue windows instead of a full TTL.
	meta := probeMeta{seq: p.Seq, at: now}
	if old := c.lastProbe[key].path; old != nil && pathEqual(old, c.pathScratch) {
		meta.path = old // unchanged: reuse, no allocation
	} else {
		if old != nil {
			c.pathRemaps++
			c.accelerateAgingLocked(old, c.pathScratch, now)
		}
		meta.path = append([]string(nil), c.pathScratch...)
	}
	c.lastProbe[key] = meta
}

func pathEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *Collector) learnEdge(from string, port int, to string, now time.Duration) {
	m := c.adj[from]
	if m == nil {
		m = make(map[int]string)
		c.adj[from] = m
	}
	m[port] = to
	c.adjSeen[edgeKey{from, to}] = now
	delete(c.evicted, edgeKey{from, to})
}

// accelerateAgingLocked backdates the last-seen time of every directed edge
// that the old hop sequence used and the new one does not, so those edges
// expire within two queue windows of now (never extending an edge's life).
// An edge still carrying some other stream's probes is rescued by its next
// confirmation before the accelerated deadline hits.
func (c *Collector) accelerateAgingLocked(oldPath, newPath []string, now time.Duration) {
	ttl := c.adjTTLLocked()
	if ttl <= 0 {
		return
	}
	kept := make(map[edgeKey]bool, 2*len(newPath))
	for i := 0; i+1 < len(newPath); i++ {
		kept[edgeKey{newPath[i], newPath[i+1]}] = true
		kept[edgeKey{newPath[i+1], newPath[i]}] = true
	}
	deadline := now - ttl + 2*c.cfg.QueueWindow
	for i := 0; i+1 < len(oldPath); i++ {
		for _, key := range [2]edgeKey{{oldPath[i], oldPath[i+1]}, {oldPath[i+1], oldPath[i]}} {
			if kept[key] {
				continue
			}
			if seen, ok := c.adjSeen[key]; ok && seen > deadline {
				c.adjSeen[key] = deadline
			}
		}
	}
}

// adjTTLLocked resolves the effective adjacency TTL: explicit, disabled, or
// derived from the current queue window.
func (c *Collector) adjTTLLocked() time.Duration {
	if c.cfg.AdjacencyTTL < 0 {
		return 0
	}
	if c.cfg.AdjacencyTTL > 0 {
		return c.cfg.AdjacencyTTL
	}
	return DefaultAdjacencyWindows * c.cfg.QueueWindow
}

// pruneAdjLocked evicts every learned edge whose last confirmation is older
// than the adjacency TTL, tombstoning it and notifying the eviction hook
// with its probe silence (the failure-detection latency). Eviction order is
// sorted for deterministic hook invocation. Measured link-delay history is
// deliberately kept: if the edge comes back, its EWMA resumes from the last
// known estimate instead of cold-starting.
func (c *Collector) pruneAdjLocked(now time.Duration) (earliestDeadline time.Duration) {
	earliestDeadline = neverExpires
	ttl := c.adjTTLLocked()
	if ttl <= 0 {
		return earliestDeadline
	}
	cutoff := now - ttl
	var expired []edgeKey
	for key, seen := range c.adjSeen {
		if seen <= cutoff {
			expired = append(expired, key)
		} else if d := seen + ttl; d < earliestDeadline {
			earliestDeadline = d
		}
	}
	sort.Slice(expired, func(i, j int) bool {
		if expired[i].from != expired[j].from {
			return expired[i].from < expired[j].from
		}
		return expired[i].to < expired[j].to
	})
	for _, key := range expired {
		silence := now - c.adjSeen[key]
		delete(c.adjSeen, key)
		if ports := c.adj[key.from]; ports != nil {
			for port, to := range ports {
				if to == key.to {
					delete(ports, port)
				}
			}
			if len(ports) == 0 {
				delete(c.adj, key.from)
			}
		}
		c.adjEvictions++
		c.evicted[key] = now
		if c.onEviction != nil {
			c.onEviction(key.from, key.to, silence)
		}
	}
	return earliestDeadline
}

// SetEvictionHook installs a callback observing each adjacency eviction
// (from, to, and the edge's probe silence at eviction — the detection
// latency). Called with the collector lock held: the hook must not call
// back into the collector.
func (c *Collector) SetEvictionHook(fn func(from, to string, silence time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEviction = fn
}

// EvictedEdge is a tombstoned adjacency: a link the collector learned and
// then aged out because probes stopped traversing it.
type EvictedEdge struct {
	From, To string
	// Since is how long ago the edge was evicted.
	Since time.Duration
}

// EvictedEdges lists current tombstones sorted by (From, To). A tombstone
// clears when a probe relearns the edge.
func (c *Collector) EvictedEdges() []EvictedEdge {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EvictedEdge, 0, len(c.evicted))
	for key, at := range c.evicted {
		out = append(out, EvictedEdge{From: key.from, To: key.to, Since: now - at})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func (c *Collector) updateDelay(k edgeKey, sample time.Duration, now time.Duration) {
	if sample <= 0 {
		return
	}
	st := c.linkDelay[k]
	if st == nil {
		st = &linkState{ewma: sample}
		c.linkDelay[k] = st
	} else {
		a := c.cfg.DelayAlpha
		st.ewma = time.Duration(a*float64(sample) + (1-a)*float64(st.ewma))
	}
	st.lastSample = sample
	st.samples++
	st.updatedAt = now
	delta := float64(sample) - st.mean
	st.mean += delta / float64(st.samples)
	st.m2 += delta * (float64(sample) - st.mean)
}

// jitterLocked returns the sample standard deviation of link latency.
func (st *linkState) jitterLocked() time.Duration {
	if st.samples < 2 {
		return 0
	}
	return time.Duration(math.Sqrt(st.m2 / float64(st.samples-1)))
}

// LinkJitter returns the standard deviation of latency samples for the
// directed link from->to, and whether at least two samples exist.
func (c *Collector) LinkJitter(from, to string) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.linkDelay[edgeKey{from, to}]
	if st == nil || st.samples < 2 {
		return 0, false
	}
	return st.jitterLocked(), true
}

func (c *Collector) pruneQueuesLocked(device string, now time.Duration) {
	cutoff := now - c.cfg.QueueWindow
	for key, reports := range c.queues {
		if key.device != device {
			continue
		}
		i := 0
		for i < len(reports) && reports[i].at < cutoff {
			i++
		}
		if i > 0 {
			c.queues[key] = append(reports[:0:0], reports[i:]...)
		}
	}
}

// MaxQueue returns the maximum queue occupancy reported for (device, port)
// within the queue window, and whether any report exists in the window.
func (c *Collector) MaxQueue(device string, port int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxQueueLocked(device, port, c.clock())
}

func (c *Collector) maxQueueLocked(device string, port int, now time.Duration) (int, bool) {
	best, found, _ := c.windowedQueueMaxLocked(c.queues[portKey{device, port}], now)
	return best, found
}

// windowedQueueMaxLocked scans one port's reports and returns the maximum
// queue occupancy among in-window reports, whether any report is in the
// window, and the earliest time an in-window report ages out of the window
// (neverExpires if none) — the moment a cached snapshot built from these
// reports must be rebuilt. It is the single definition of the queue-window
// cutoff/boundary rule, shared by point lookups and snapshot builds.
func (c *Collector) windowedQueueMaxLocked(reports []queueReport, now time.Duration) (best int, found bool, expireAt time.Duration) {
	expireAt = neverExpires
	cutoff := now - c.cfg.QueueWindow
	for i := range reports {
		if reports[i].at < cutoff {
			continue
		}
		found = true
		if reports[i].maxQueue > best {
			best = reports[i].maxQueue
		}
		// This report stays in-window while now' <= at + window; the
		// earliest such boundary is when cached results must be recomputed.
		if e := reports[i].at + c.cfg.QueueWindow; e < expireAt {
			expireAt = e
		}
	}
	return best, found, expireAt
}

// LinkDelay returns the EWMA latency estimate for the directed link
// from->to, and whether any measurement exists.
func (c *Collector) LinkDelay(from, to string) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.linkDelay[edgeKey{from, to}]
	if st == nil {
		return 0, false
	}
	return st.ewma, true
}

// CoverageReport describes telemetry freshness across known devices.
type CoverageReport struct {
	// Fresh lists devices whose last INT record is within StaleAfter.
	Fresh []string
	// Stale lists known devices with no recent report — the paper's
	// future-work concern that probe routes may not cover every device.
	Stale []string
	// LastSeen maps every known device to its last report time.
	LastSeen map[string]time.Duration
}

// Coverage reports which devices have fresh telemetry.
func (c *Collector) Coverage() CoverageReport {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := CoverageReport{LastSeen: make(map[string]time.Duration, len(c.lastReport))}
	for dev, at := range c.lastReport {
		rep.LastSeen[dev] = at
		if now-at <= c.cfg.StaleAfter {
			rep.Fresh = append(rep.Fresh, dev)
		} else {
			rep.Stale = append(rep.Stale, dev)
		}
	}
	sortStrings(rep.Fresh)
	sortStrings(rep.Stale)
	return rep
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
