// Package collector implements the scheduler-side telemetry collector: it
// parses INT probe packets, infers the network topology from the order of
// INT records (consecutive records identify adjacent devices), and maintains
// a link-state database of measured link latencies and per-port maximum
// queue occupancies.
//
// The collector is deliberately independent of the simulator's ground-truth
// topology: everything the scheduler knows, it learned from probes — exactly
// the information a real INT deployment would have.
//
// The link-state database is sharded: Config.Shards partitions the node ID
// space (by an operator-supplied partition map or an FNV-1a hash) into
// independent shards, each with its own mutex, queue-window state,
// adjacency-aging state, and epoch counter, so probes crossing disjoint
// partitions ingest without contending (shard.go, ingest.go, aging.go).
// Snapshot() is a merge-on-read over cached per-shard views versioned by a
// composite epoch vector (snapshot.go), and per-destination path trees are
// maintained incrementally across snapshots (spt.go). With the default
// single shard the observable behavior — epochs included — is identical to
// the historical single-mutex collector.
//
// This file is the package's public API surface: configuration,
// construction, ingest counters, configuration setters, point lookups, and
// health/coverage reporting. Ingest lives in ingest.go, aging in aging.go,
// view building and merging in snapshot.go, and the snapshot read API on
// Topology in topology.go.
package collector

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
)

// Config tunes the collector.
type Config struct {
	// QueueWindow is how long a flushed max-queue report stays eligible
	// when computing the current per-port maximum. The paper ranks on the
	// "maximum observed queue size in the last probing interval"; use
	// roughly 2× the probing interval so in-flight jitter cannot open
	// coverage gaps. Zero means DefaultQueueWindow.
	QueueWindow time.Duration
	// DelayAlpha is the EWMA weight for new link-latency samples in
	// (0, 1]. Zero means DefaultDelayAlpha.
	DelayAlpha float64
	// DefaultLinkRateBps is the assumed capacity of links whose rate the
	// operator has not configured; bandwidth ranking needs capacities.
	// Zero means DefaultLinkRate.
	DefaultLinkRateBps int64
	// StaleAfter marks devices whose last report is older than this as
	// stale in Coverage reports. Zero means DefaultStaleAfter.
	StaleAfter time.Duration
	// AdjacencyTTL is how long a learned adjacency survives without a
	// probe re-confirming it before it is evicted from snapshots (the live
	// re-mapping that lets the topology track link failures). Zero derives
	// the TTL from the queue window — DefaultAdjacencyWindows × QueueWindow,
	// tracking SetQueueWindow — mirroring the in-window queue-report expiry;
	// NoAdjacencyAging disables eviction entirely (the historical
	// learn-only behavior, needed when telemetry arrives on data packets
	// with no periodic refresh).
	AdjacencyTTL time.Duration
	// Shards is the number of link-state partitions (clamped to
	// [1, MaxShards]). Zero or one keeps the historical single-shard
	// behavior; larger values let probes through disjoint partitions
	// ingest concurrently and confine epoch invalidation to the touched
	// partitions.
	Shards int
	// Partition maps a node ID to a shard index; results are reduced
	// modulo Shards, so a topology's partition map (e.g. pod or region
	// number) composes with any shard count. Nil means an FNV-1a hash of
	// the node ID.
	Partition func(node string) int
}

// Defaults for Config.
const (
	DefaultQueueWindow = 200 * time.Millisecond
	DefaultDelayAlpha  = 0.3
	DefaultLinkRate    = 20_000_000 // 20 Mbps, the paper's effective link rate
	DefaultStaleAfter  = 2 * time.Second
	// DefaultAdjacencyWindows scales the queue window into the default
	// adjacency TTL. Five windows is ~10 probe intervals at the
	// experiment's 2×interval window: long enough that a couple of lost
	// probes cannot tear a live link out of the map, short enough that a
	// dead link disappears within about a second of real failure.
	DefaultAdjacencyWindows = 5
	// MaxShards bounds Config.Shards.
	MaxShards = 64
	// DefaultIngestQueue is the per-shard queue length used by
	// StartIngestWorkers when none is given.
	DefaultIngestQueue = 256
)

// NoAdjacencyAging disables adjacency eviction when set as
// Config.AdjacencyTTL: learned edges live forever.
const NoAdjacencyAging = time.Duration(-1)

func (c Config) withDefaults() Config {
	if c.QueueWindow <= 0 {
		c.QueueWindow = DefaultQueueWindow
	}
	if c.DelayAlpha <= 0 || c.DelayAlpha > 1 {
		c.DelayAlpha = DefaultDelayAlpha
	}
	if c.DefaultLinkRateBps <= 0 {
		c.DefaultLinkRateBps = DefaultLinkRate
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = DefaultStaleAfter
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Shards > MaxShards {
		c.Shards = MaxShards
	}
	return c
}

type edgeKey struct{ from, to string }

type portKey struct {
	device string
	port   int
}

type queueReport struct {
	at       time.Duration
	maxQueue int
	packets  uint32
}

// probeKey identifies one probe stream: a host may probe several targets
// (coverage-planned routes), each with its own sequence space.
type probeKey struct {
	origin, target string
}

type probeMeta struct {
	seq uint64
	at  time.Duration
	// path is the hop sequence (origin, devices..., target) of the last
	// accepted probe; a change means the route under the stream moved.
	path []string
	// remaps and resets are this stream's cumulative path-remap and
	// reassembly-reset counts — the per-stream decomposition of the global
	// pathRemaps/reasmResets counters, exposed through StreamSignals so the
	// adaptive controller can react to churn deltas per stream.
	remaps, resets uint64
}

// Collector builds and maintains the scheduler's view of the network.
type Collector struct {
	self  string
	clock func() time.Duration
	cfg   Config
	// queueWindowNs is the mutable queue window (SetQueueWindow), read by
	// shard operations without a global lock.
	queueWindowNs atomic.Int64

	shards    []*shard
	partition func(string) int

	// snapMu serializes merged-snapshot rebuilds; snap is the published
	// cached snapshot (nil until first Snapshot).
	snapMu sync.Mutex
	snap   atomic.Pointer[mergedSnap]
	// noSnapCache forces Snapshot to rebuild on every call (the
	// pre-caching behavior), for before/after benchmarking.
	noSnapCache atomic.Bool
	// spt is the shared incremental shortest-path-tree store.
	spt *sptStore

	// Ingest counters (atomic; see Stats).
	probesReceived     atomic.Uint64
	probesOutOfOrder   atomic.Uint64
	recordsParsed      atomic.Uint64
	pathRemaps         atomic.Uint64
	ingestDrops        atomic.Uint64
	telemetryBytes     atomic.Uint64
	recordsReassembled atomic.Uint64
	reasmCompletions   atomic.Uint64
	reasmResets        atomic.Uint64

	// Asynchronous ingest (live mode only; see StartIngestWorkers).
	ingest   atomic.Pointer[[]chan *telemetry.ProbePayload]
	ingestWG sync.WaitGroup
}

// New creates a collector for the scheduler host self. clock supplies the
// current time (virtual in simulation, wall-clock in live mode).
func New(self netsim.NodeID, clock func() time.Duration, cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{
		self:      string(self),
		clock:     clock,
		cfg:       cfg,
		partition: cfg.Partition,
		spt:       newSPTStore(),
	}
	c.queueWindowNs.Store(int64(cfg.QueueWindow))
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = newShard()
	}
	c.shardFor(c.self).isHost[c.self] = true
	return c
}

// Self returns the collector's own host ID.
func (c *Collector) Self() netsim.NodeID { return netsim.NodeID(c.self) }

// shardOf maps a node ID to its owning shard index.
func (c *Collector) shardOf(node string) int {
	n := len(c.shards)
	if c.partition != nil {
		i := c.partition(node) % n
		if i < 0 {
			i += n
		}
		return i
	}
	if n == 1 {
		return 0
	}
	return int(fnv32a(node) % uint32(n))
}

func (c *Collector) shardFor(node string) *shard { return c.shards[c.shardOf(node)] }

func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// window returns the current queue window.
func (c *Collector) window() time.Duration { return time.Duration(c.queueWindowNs.Load()) }

// Epoch returns the collector's current state version: the sum of the
// per-shard epoch vector. It advances on every accepted probe and
// configuration change, and when a snapshot rebuild detects that a queue
// report or adjacency aged out (state changed without a probe); equal
// epochs guarantee that Snapshot returns the identical topology. See
// EpochVector for the per-shard decomposition.
func (c *Collector) Epoch() uint64 {
	var sum uint64
	for _, sh := range c.shards {
		sum += sh.epoch.Load()
	}
	return sum
}

// EpochVector returns the current composite epoch vector, one entry per
// shard. A mutation confined to one partition moves only that entry, which
// is what lets sharded deployments attribute invalidations (and tests prove
// isolation).
func (c *Collector) EpochVector() []uint64 {
	out := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.epoch.Load()
	}
	return out
}

// Shards returns the number of link-state partitions.
func (c *Collector) Shards() int { return len(c.shards) }

// SetSnapshotCaching toggles snapshot reuse. Caching is on by default;
// disabling it forces every Snapshot call to rebuild a fresh deep copy (the
// pre-epoch behavior), which exists for before/after benchmarking and
// debugging only. With caching off, queue-window aging no longer advances
// the epoch (two same-epoch snapshots can then differ), so pair it with
// ServiceConfig.DisableRankCache as the qps experiment does.
func (c *Collector) SetSnapshotCaching(enabled bool) { c.noSnapCache.Store(!enabled) }

// Stats is a snapshot of the collector's ingestion counters.
type Stats struct {
	// ProbesReceived counts ingested probe payloads.
	ProbesReceived uint64
	// ProbesOutOfOrder counts probes dropped for stale sequence numbers.
	ProbesOutOfOrder uint64
	// RecordsParsed counts INT records processed.
	RecordsParsed uint64
	// AdjacencyEvictions counts learned edges aged out of the topology.
	AdjacencyEvictions uint64
	// PathRemaps counts probe streams that arrived with a changed hop
	// sequence (the route under the stream moved).
	PathRemaps uint64
	// IngestDrops counts probes dropped at the asynchronous ingest queues
	// (always zero on the synchronous path).
	IngestDrops uint64
	// TelemetryBytes is the total on-wire size of every ingested probe
	// payload (telemetry.EncodedSize) — the bytes-on-wire cost the
	// probabilistic mode exists to reduce.
	TelemetryBytes uint64
	// RecordsReassembled counts fragments merged through the probabilistic
	// reassembly stage (a subset of RecordsParsed).
	RecordsReassembled uint64
	// ReassemblyCompletions counts reassembly cycles in which every hop of
	// a stream's path reported at least once.
	ReassemblyCompletions uint64
	// ReassemblyResets counts reassembly buffers discarded because a probe
	// contradicted them (path length or device changed — the stream's
	// route moved).
	ReassemblyResets uint64
}

// Stats returns the ingestion counters.
func (c *Collector) Stats() Stats {
	st := Stats{
		ProbesReceived:        c.probesReceived.Load(),
		ProbesOutOfOrder:      c.probesOutOfOrder.Load(),
		RecordsParsed:         c.recordsParsed.Load(),
		PathRemaps:            c.pathRemaps.Load(),
		IngestDrops:           c.ingestDrops.Load(),
		TelemetryBytes:        c.telemetryBytes.Load(),
		RecordsReassembled:    c.recordsReassembled.Load(),
		ReassemblyCompletions: c.reasmCompletions.Load(),
		ReassemblyResets:      c.reasmResets.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.AdjacencyEvictions += sh.adjEvictions
		sh.mu.Unlock()
	}
	return st
}

// IngestDrops returns the number of probes dropped at the asynchronous
// ingest queues.
func (c *Collector) IngestDrops() uint64 { return c.ingestDrops.Load() }

// ProbeStream reports the freshness of one probe stream — the (origin,
// target) sequence space a probing host maintains. Target is "" for streams
// probing the collector itself. The observability health model derives
// per-edge probe liveness from these.
type ProbeStream struct {
	Origin, Target string
	// Seq is the highest accepted sequence number.
	Seq uint64
	// Age is the time since the last accepted probe of this stream.
	Age time.Duration
}

// ProbeStreams lists every known probe stream with its freshness, sorted by
// (origin, target).
func (c *Collector) ProbeStreams() []ProbeStream {
	now := c.clock()
	var out []ProbeStream
	for _, sh := range c.shards {
		sh.streamMu.Lock()
		for key, meta := range sh.streams {
			out = append(out, ProbeStream{
				Origin: key.origin,
				Target: key.target,
				Seq:    meta.seq,
				Age:    now - meta.at,
			})
		}
		sh.streamMu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// QueueWindow returns the configured queue-report freshness window.
func (c *Collector) QueueWindow() time.Duration { return c.window() }

// SetQueueWindow adjusts the queue-report window, typically to track a
// changed probing interval (Fig 9 sweeps). Windowed maxima of every shard
// depend on it, so every shard's epoch advances.
func (c *Collector) SetQueueWindow(w time.Duration) {
	if w <= 0 {
		return
	}
	c.queueWindowNs.Store(int64(w))
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.epoch.Add(1)
		sh.mu.Unlock()
	}
}

// SetLinkRate records the capacity of the directed link from->to. Both
// directions are set (links are full duplex and symmetric in this system);
// only the owning shards' epochs advance.
func (c *Collector) SetLinkRate(from, to netsim.NodeID, rateBps int64) {
	i, j := c.shardOf(string(from)), c.shardOf(string(to))
	if i > j {
		i, j = j, i
	}
	c.shards[i].mu.Lock()
	if j != i {
		c.shards[j].mu.Lock()
	}
	c.shardFor(string(from)).linkRate[edgeKey{string(from), string(to)}] = rateBps
	c.shardFor(string(to)).linkRate[edgeKey{string(to), string(from)}] = rateBps
	c.shards[i].epoch.Add(1)
	if j != i {
		c.shards[j].epoch.Add(1)
		c.shards[j].mu.Unlock()
	}
	c.shards[i].mu.Unlock()
}

// SetEvictionHook installs a callback observing each adjacency eviction
// (from, to, and the edge's probe silence at eviction — the detection
// latency). Called with the owning shard's lock held: the hook must not
// call back into the collector. Within one shard, evictions of one prune
// pass arrive sorted by (from, to); across shards they arrive in shard
// order.
func (c *Collector) SetEvictionHook(fn func(from, to string, silence time.Duration)) {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.onEviction = fn
		sh.mu.Unlock()
	}
}

// SetReassemblyHook installs a callback observing each completed reassembly
// cycle of a probabilistic probe stream: the origin and target, the path's
// hop count, and how long the cycle took from its first fragment — the
// telemetry staleness cost of sampling, which the live daemon exports as a
// histogram. Called with the origin shard's stream lock held: the hook must
// not call back into the collector.
func (c *Collector) SetReassemblyHook(fn func(origin, target string, hops int, latency time.Duration)) {
	for _, sh := range c.shards {
		sh.streamMu.Lock()
		sh.onReassembly = fn
		sh.streamMu.Unlock()
	}
}

// Bind installs the collector as the probe handler of the scheduler host's
// transport stack. It also chains into the stack's control handler so that
// INT reports relayed by probe-sink hosts (coverage-planned probes that
// terminated elsewhere) are ingested too.
func (c *Collector) Bind(stack *transport.Stack) {
	stack.ProbeHandler = func(pkt *netsim.Packet) {
		if pkt.Probe != nil {
			c.HandleProbe(pkt.Probe)
		}
	}
	prev := stack.ControlHandler
	stack.ControlHandler = func(from netsim.NodeID, payload any) {
		if p, ok := payload.(*telemetry.ProbePayload); ok {
			c.HandleProbe(p)
			return
		}
		if prev != nil {
			prev(from, payload)
		}
	}
}

// MaxQueue returns the maximum queue occupancy reported for (device, port)
// within the queue window, and whether any report exists in the window.
func (c *Collector) MaxQueue(device string, port int) (int, bool) {
	now := c.clock()
	sh := c.shardFor(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	best, found, _ := sh.queues[device][port].windowMax(now, c.window())
	return best, found
}

// LinkDelay returns the EWMA latency estimate for the directed link
// from->to, and whether any measurement exists.
func (c *Collector) LinkDelay(from, to string) (time.Duration, bool) {
	sh := c.shardFor(from)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.linkDelay[edgeKey{from, to}]
	if st == nil {
		return 0, false
	}
	return st.ewma, true
}

// LinkJitter returns the standard deviation of latency samples for the
// directed link from->to, and whether at least two samples exist.
func (c *Collector) LinkJitter(from, to string) (time.Duration, bool) {
	sh := c.shardFor(from)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.linkDelay[edgeKey{from, to}]
	if st == nil || st.samples < 2 {
		return 0, false
	}
	return st.jitter(), true
}

// EvictedEdge is a tombstoned adjacency: a link the collector learned and
// then aged out because probes stopped traversing it.
type EvictedEdge struct {
	From, To string
	// Since is how long ago the edge was evicted.
	Since time.Duration
}

// EvictedEdges lists current tombstones sorted by (From, To). A tombstone
// clears when a probe relearns the edge.
func (c *Collector) EvictedEdges() []EvictedEdge {
	now := c.clock()
	var out []EvictedEdge
	for _, sh := range c.shards {
		sh.mu.Lock()
		for key, at := range sh.evicted {
			out = append(out, EvictedEdge{From: key.from, To: key.to, Since: now - at})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// CoverageReport describes telemetry freshness across known devices.
type CoverageReport struct {
	// Fresh lists devices whose last INT record is within StaleAfter.
	Fresh []string
	// Stale lists known devices with no recent report — the paper's
	// future-work concern that probe routes may not cover every device.
	Stale []string
	// LastSeen maps every known device to its last report time.
	LastSeen map[string]time.Duration
}

// Coverage reports which devices have fresh telemetry.
func (c *Collector) Coverage() CoverageReport {
	now := c.clock()
	rep := CoverageReport{LastSeen: make(map[string]time.Duration)}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for dev, at := range sh.lastReport {
			rep.LastSeen[dev] = at
			if now-at <= c.cfg.StaleAfter {
				rep.Fresh = append(rep.Fresh, dev)
			} else {
				rep.Stale = append(rep.Stale, dev)
			}
		}
		sh.mu.Unlock()
	}
	sortStrings(rep.Fresh)
	sortStrings(rep.Stale)
	return rep
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
