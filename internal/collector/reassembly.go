package collector

import (
	"sort"
	"time"

	"intsched/internal/telemetry"
)

// Probabilistic-probe reassembly (PINT-style). A probabilistic probe carries
// a sampled subset of its path's INT records, each tagged with its hop
// index, plus the true hop count. The collector buffers fragments per probe
// stream and merges successive probes into one assembled path, from which it
// applies exactly the learning rules the deterministic path uses — so at
// p=1.0 (every hop sampled on every probe) the resulting link state is
// byte-identical to deterministic mode.
//
// Placement and locking: a stream's reassembly buffer lives in the shard
// owning the probe's origin — the same shard whose streamMu already
// serializes the stream — so fragment merging needs no extra locks, and
// sharded reassembly inherits the determinism argument of sharded ingest.
// Sequence gating is the stream-level gate in HandleProbe: a probe whose
// sequence number is not strictly newer than the last accepted one is
// dropped before reassembly, so a stale or retransmitted fragment can never
// overwrite newer buffered state.

// reasmFrag is one buffered hop fragment.
type reasmFrag struct {
	// valid marks the slot as holding a fragment of the current path shape.
	valid bool
	// cycleMark tracks whether this slot contributed to the current
	// reassembly cycle (reset each time the whole path completes).
	cycleMark bool
	// seq is the sequence number of the probe that delivered the fragment;
	// frag.seq == probe.Seq identifies fragments fresh from this probe.
	seq uint64
	// rec is a deep copy of the fragment's record (callers may reuse the
	// probe payload's backing storage).
	rec telemetry.Record
}

// reasmState is one stream's reassembly buffer: one slot per hop of the
// declared path length.
type reasmState struct {
	frags []reasmFrag
	// cycleSeen counts distinct slots filled during the current cycle;
	// cycleAt is when the cycle's first fragment arrived. A cycle completes
	// when every hop has reported at least once, which is the reassembly
	// latency the live daemon's histogram observes.
	cycleSeen int
	cycleAt   time.Duration
}

// merge deep-copies rec into its hop slot, reusing the slot's queue scratch.
func (st *reasmState) merge(rec *telemetry.Record, seq uint64) {
	f := &st.frags[rec.HopIndex]
	scratch := f.rec.Queues[:0]
	f.rec = *rec
	f.rec.Queues = append(scratch, rec.Queues...)
	f.valid = true
	f.seq = seq
}

// impliedEdges appends the directed edges the buffer currently vouches for:
// both directions of every adjacent valid pair, plus the origin and target
// endpoint links when the boundary fragments are valid.
func (st *reasmState) impliedEdges(dst []edgeKey, origin, target string) []edgeKey {
	n := len(st.frags)
	if n == 0 {
		return dst
	}
	if st.frags[0].valid {
		dst = append(dst, edgeKey{origin, st.frags[0].rec.Device}, edgeKey{st.frags[0].rec.Device, origin})
	}
	for i := 1; i < n; i++ {
		if st.frags[i-1].valid && st.frags[i].valid {
			a, b := st.frags[i-1].rec.Device, st.frags[i].rec.Device
			dst = append(dst, edgeKey{a, b}, edgeKey{b, a})
		}
	}
	if st.frags[n-1].valid {
		last := st.frags[n-1].rec.Device
		dst = append(dst, edgeKey{last, target}, edgeKey{target, last})
	}
	return dst
}

// reassembleProbe ingests one accepted probabilistic probe and reports
// whether it reset a contradicted reassembly buffer (the stream's route
// moved), so the caller can bump the stream's per-stream churn counters.
// Callers hold the origin shard's streamMu (and no shard mu).
func (c *Collector) reassembleProbe(os *shard, key probeKey, p *telemetry.ProbePayload, target string, now time.Duration) bool {
	hops := p.HopCount
	if os.reasm == nil {
		os.reasm = make(map[probeKey]*reasmState)
	}
	st := os.reasm[key]
	if st == nil {
		st = &reasmState{}
		os.reasm[key] = st
	}

	// A buffered fragment that contradicts this probe — different path
	// length, or a different device at a sampled hop index — means the
	// route under the stream moved: the buffer describes a path that no
	// longer exists. Reset it and put the abandoned edges on accelerated
	// aging, exactly as a deterministic path remap would. (A reroute whose
	// changed hops were not sampled this probe is caught by a later probe
	// that samples them — reassembly is eventually consistent by design.)
	reset := len(st.frags) != 0 && len(st.frags) != hops
	if !reset {
		for i := range p.Stack.Records {
			rec := &p.Stack.Records[i]
			if rec.HopIndex >= 0 && rec.HopIndex < len(st.frags) &&
				st.frags[rec.HopIndex].valid && st.frags[rec.HopIndex].rec.Device != rec.Device {
				reset = true
				break
			}
		}
	}
	var oldEdges []edgeKey
	if reset {
		c.reasmResets.Add(1)
		c.pathRemaps.Add(1)
		oldEdges = st.impliedEdges(nil, key.origin, target)
	}
	if reset || len(st.frags) != hops {
		if cap(st.frags) < hops {
			grown := make([]reasmFrag, hops)
			copy(grown, st.frags[:len(st.frags)])
			st.frags = grown
		} else {
			st.frags = st.frags[:hops]
		}
		for i := range st.frags {
			st.frags[i].valid = false
			st.frags[i].cycleMark = false
		}
		st.cycleSeen = 0
	}

	// Merge this probe's fragments. The stream-level sequence gate already
	// guaranteed they are strictly newer than anything buffered.
	freshAny := false
	for i := range p.Stack.Records {
		rec := &p.Stack.Records[i]
		if rec.HopIndex < 0 || rec.HopIndex >= hops {
			continue // malformed index; never trust wire input
		}
		st.merge(rec, p.Seq)
		freshAny = true
	}

	// Lock the owners of every node this probe's state update touches: the
	// endpoints, every buffered device, and — on a reset — the abandoned
	// edges' from-nodes.
	set := os.lockScratch[:0]
	set = append(set, c.shardOf(key.origin), c.shardOf(target))
	for i := range st.frags {
		if st.frags[i].valid {
			set = append(set, c.shardOf(st.frags[i].rec.Device))
		}
	}
	for _, e := range oldEdges {
		set = append(set, c.shardOf(e.from))
	}
	sort.Ints(set)
	set = dedupInts(set)
	os.lockScratch = set

	for _, i := range set {
		c.shards[i].mu.Lock()
	}
	for _, i := range set {
		c.shards[i].epoch.Add(1)
	}
	c.applyFragsLocked(st, p, key.origin, target, now)
	if len(oldEdges) > 0 {
		c.backdateAbandonedLocked(oldEdges, st, key.origin, target, now)
	}
	for i := len(set) - 1; i >= 0; i-- {
		c.shards[set[i]].mu.Unlock()
	}

	// Cycle accounting: once every hop has reported at least once the path
	// is fully reassembled. The hook observes how long that took — the
	// telemetry staleness cost of sampling.
	if freshAny && st.cycleSeen == 0 {
		st.cycleAt = now
	}
	for i := range st.frags {
		f := &st.frags[i]
		if f.valid && f.seq == p.Seq && !f.cycleMark {
			f.cycleMark = true
			st.cycleSeen++
		}
	}
	if hops > 0 && st.cycleSeen == hops {
		c.reasmCompletions.Add(1)
		if os.onReassembly != nil {
			os.onReassembly(key.origin, target, hops, now-st.cycleAt)
		}
		for i := range st.frags {
			st.frags[i].cycleMark = false
		}
		st.cycleSeen = 0
	}
	return reset
}

// applyFragsLocked applies the merged buffer to the owning shards. Fragments
// fresh from this probe get the full deterministic treatment — record
// counters, last-report time, queue reports, and link-delay samples — while
// stale-but-valid fragments get adjacency keep-alive only: the probe's
// arrival proves the buffered path is still being traversed end to end, so
// its edges must not age out merely because sampling skipped them lately,
// but their measurements belong to older probes and are already folded in.
// At p=1.0 every fragment is fresh on every probe and the keep-alive
// refreshes are idempotent duplicates of the fresh-path learning, which is
// what keeps p=1.0 output byte-identical to deterministic mode. Callers hold
// the mu of every shard owning the origin, the target, or a valid fragment's
// device.
func (c *Collector) applyFragsLocked(st *reasmState, p *telemetry.ProbePayload, origin, target string, now time.Duration) {
	alpha := c.cfg.DelayAlpha
	window := c.window()
	c.shardFor(origin).isHost[origin] = true
	c.shardFor(target).isHost[target] = true

	hops := len(st.frags)
	for i := 0; i < hops; i++ {
		f := &st.frags[i]
		if !f.valid {
			continue
		}
		fresh := f.seq == p.Seq
		dev := c.shardFor(f.rec.Device)

		// The upstream neighbor: the origin host for the first hop, the
		// previous buffered fragment otherwise. A gap (previous hop never
		// sampled yet) leaves the edge unknown — a later probe that
		// samples the gap fills it in.
		prev, prevEgress, prevKnown := origin, 0, true
		if i > 0 {
			if pf := &st.frags[i-1]; pf.valid {
				prev, prevEgress = pf.rec.Device, pf.rec.EgressPort
			} else {
				prevKnown = false
			}
		}

		if fresh {
			c.recordsParsed.Add(1)
			c.recordsReassembled.Add(1)
			dev.lastReport[f.rec.Device] = now
		}
		if prevKnown {
			c.shardFor(prev).learnEdgeLocked(prev, prevEgress, f.rec.Device, now)
			dev.learnEdgeLocked(f.rec.Device, f.rec.IngressPort, prev, now)
			// Every hop is egress-stamped whether or not it was sampled,
			// so a fresh fragment's link latency is a current measurement
			// even when the upstream record is from an older probe.
			if fresh && f.rec.LinkLatency > 0 {
				c.shardFor(prev).updateDelayLocked(edgeKey{prev, f.rec.Device}, f.rec.LinkLatency, now, alpha)
				dev.updateDelayLocked(edgeKey{f.rec.Device, prev}, f.rec.LinkLatency, now, alpha)
			}
		}
		if fresh && len(f.rec.Queues) > 0 {
			ports := dev.queues[f.rec.Device]
			if ports == nil {
				ports = make(map[int]*portWindow)
				dev.queues[f.rec.Device] = ports
			}
			for _, q := range f.rec.Queues {
				w := ports[q.Port]
				if w == nil {
					w = &portWindow{}
					ports[q.Port] = w
				}
				w.push(queueReport{at: now, maxQueue: q.MaxQueue, packets: q.Packets})
			}
		}
		if fresh {
			dev.pruneQueuesLocked(f.rec.Device, now, window)
		}
	}

	// Final hop: last buffered device -> target.
	if hops == 0 {
		// The probe declared a switchless path: origin adjacent to target,
		// as in the deterministic empty-stack case.
		c.shardFor(origin).learnEdgeLocked(origin, 0, target, now)
		c.shardFor(target).learnEdgeLocked(target, 0, origin, now)
		return
	}
	if lf := &st.frags[hops-1]; lf.valid {
		c.shardFor(lf.rec.Device).learnEdgeLocked(lf.rec.Device, lf.rec.EgressPort, target, now)
		c.shardFor(target).learnEdgeLocked(target, 0, lf.rec.Device, now)
		if lf.seq == p.Seq {
			lat := p.LastHopLatency
			if target == c.self {
				lat = now - lf.rec.EgressTS
			}
			if lat > 0 {
				c.shardFor(lf.rec.Device).updateDelayLocked(edgeKey{lf.rec.Device, target}, lat, now, alpha)
				c.shardFor(target).updateDelayLocked(edgeKey{target, lf.rec.Device}, lat, now, alpha)
			}
		}
	}
}

// backdateAbandonedLocked puts the pre-reset buffer's edges on accelerated
// aging, except those the rebuilt buffer still vouches for — the
// reassembly-side analog of the deterministic path-remap rule. Callers hold
// the mu of every shard owning an abandoned edge's from-node.
func (c *Collector) backdateAbandonedLocked(oldEdges []edgeKey, st *reasmState, origin, target string, now time.Duration) {
	ttl := c.adjTTL()
	if ttl <= 0 {
		return
	}
	keptEdges := st.impliedEdges(nil, origin, target)
	kept := make(map[edgeKey]bool, len(keptEdges))
	for _, e := range keptEdges {
		kept[e] = true
	}
	deadline := now - ttl + 2*c.window()
	for _, e := range oldEdges {
		if !kept[e] {
			c.backdateEdgeLocked(e, deadline)
		}
	}
}
