package collector

import (
	"reflect"
	"testing"
	"time"
)

// StreamSignals assembles the adaptive controller's per-stream churn digest:
// sorted order, ages, path devices, remap counts, windowed queue variance,
// and tombstoned path edges.
func TestStreamSignalsBasics(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n2", 1, time.Millisecond,
		devSpec{id: "s2", out: 1, egressTS: clk.now}))
	clk.now += 20 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 3, time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 4}, egressTS: clk.now},
		devSpec{id: "s3", in: 2, out: 3, egressTS: clk.now}))
	clk.now += 30 * time.Millisecond

	sigs := c.StreamSignals()
	if len(sigs) != 2 {
		t.Fatalf("got %d signals, want 2", len(sigs))
	}
	if sigs[0].Origin != "n1" || sigs[1].Origin != "n2" {
		t.Fatalf("signals not sorted by origin: %+v", sigs)
	}
	n1 := sigs[0]
	if n1.Seq != 3 || n1.Age != 30*time.Millisecond {
		t.Fatalf("n1 seq/age %d/%v, want 3/30ms", n1.Seq, n1.Age)
	}
	if !reflect.DeepEqual(n1.Devices, []string{"s1", "s3"}) {
		t.Fatalf("n1 devices %v, want interior path", n1.Devices)
	}
	if n1.Remaps != 0 || n1.Resets != 0 || n1.EvictedOnPath != 0 {
		t.Fatalf("fresh stream shows churn: %+v", n1)
	}
	if n2 := sigs[1]; n2.Age != 50*time.Millisecond || len(n2.Devices) != 1 {
		t.Fatalf("n2 signal %+v", n2)
	}
}

func TestStreamSignalsCountsRemaps(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond,
		devSpec{id: "s1", out: 1, egressTS: clk.now}))
	clk.now += 10 * time.Millisecond
	// Same stream, different hop sequence: a path remap.
	c.HandleProbe(probeFrom("n1", 2, time.Millisecond,
		devSpec{id: "s2", out: 1, egressTS: clk.now}))
	clk.now += 10 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 3, time.Millisecond,
		devSpec{id: "s2", out: 1, egressTS: clk.now}))

	sigs := c.StreamSignals()
	if len(sigs) != 1 || sigs[0].Remaps != 1 {
		t.Fatalf("signals %+v, want one stream with one remap", sigs)
	}
	if !reflect.DeepEqual(sigs[0].Devices, []string{"s2"}) {
		t.Fatalf("devices %v, want the post-remap path", sigs[0].Devices)
	}
}

func TestStreamSignalsQueueVariance(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	// Two in-window reports, queue 2 then 6: sample variance 8.
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond,
		devSpec{id: "s1", out: 1, queues: map[int]int{1: 2}, egressTS: clk.now}))
	clk.now += 50 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 2, time.Millisecond,
		devSpec{id: "s1", out: 1, queues: map[int]int{1: 6}, egressTS: clk.now}))

	sigs := c.StreamSignals()
	if len(sigs) != 1 {
		t.Fatalf("got %d signals", len(sigs))
	}
	if v := sigs[0].QueueVar; v < 7.99 || v > 8.01 {
		t.Fatalf("queue variance %v, want 8 (samples 2 and 6)", v)
	}
	// Past the window the reports age out and the variance collapses.
	clk.now += time.Hour
	if v := c.StreamSignals()[0].QueueVar; v != 0 {
		t.Fatalf("stale variance %v, want 0", v)
	}
}

func TestStreamSignalsSeeTombstonedEdges(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, egressTS: clk.now},
		devSpec{id: "s3", in: 2, out: 3, egressTS: clk.now}))
	// Age every edge past the TTL (5 × 200ms window) and trigger the prune.
	clk.now += 2 * time.Second
	c.Snapshot()

	sigs := c.StreamSignals()
	if len(sigs) != 1 {
		t.Fatalf("got %d signals", len(sigs))
	}
	// Path n1–s1–s3–sched: all three hops tombstoned.
	if sigs[0].EvictedOnPath != 3 {
		t.Fatalf("EvictedOnPath = %d, want all 3 path edges", sigs[0].EvictedOnPath)
	}
}

// StreamSignals is a pure read: calling it must not perturb collector
// state, snapshots, or stats.
func TestStreamSignalsIsPureRead(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond,
		devSpec{id: "s1", out: 1, queues: map[int]int{1: 3}, egressTS: clk.now}))
	before := c.Stats()
	a := c.StreamSignals()
	b := c.StreamSignals()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated reads diverged:\n%+v\n%+v", a, b)
	}
	if c.Stats() != before {
		t.Fatalf("StreamSignals changed stats: %+v -> %+v", before, c.Stats())
	}
	// Mutating the returned slice must not reach collector state.
	a[0].Devices[0] = "corrupted"
	if got := c.StreamSignals()[0].Devices[0]; got != "s1" {
		t.Fatalf("returned Devices aliases collector state: %q", got)
	}
}
