package collector

import (
	"sort"
	"time"
)

// CSR edge-metric arena. The merged snapshot already materializes the
// neighbor index rows (nbrIdx) the path trees run on; the arena flattens
// those rows into one CSR array and, at the same merge, resolves every
// per-direction edge metric (delay, jitter, rate, windowed queue max) out of
// the per-shard view maps into flat arrays. The scheduler hot path then
// reads metrics as array loads indexed by CSR position instead of hashing
// string pairs through delegated shard-view maps.
//
// Coordinate system: node index i is Nodes[i] (sorted, so index order is
// name order). CSR edge id e is the position of neighbor v in u's row:
// edgeStart[u] <= e < edgeStart[u+1] and nbrFlat[e] == v. Each CSR edge
// carries BOTH directions' metrics: slot 2e holds the u->v direction and
// slot 2e+1 holds v->u. Storing the reverse direction alongside is what
// makes tree walks resolvable: a destination-tree hop a->b guarantees the
// CSR edge (b, a) exists (BFS discovered a out of b's neighbor row), while
// the forward edge (a, b) may have aged out independently — adjacency is
// directional. DirSlot tries the forward edge first, then the reverse.
//
// The slot arrays are filled through the exact same view-map reads the
// string-keyed Topology methods perform (LinkDelay / LinkJitter / LinkRate /
// QueueMax), so for any pair that is a CSR edge in either direction, slot
// reads and string reads are equal by construction. Pairs outside the CSR
// adjacency (metric state can outlive adjacency eviction) have no slot;
// callers needing those semantics use the string methods, which still
// delegate to the shard views.
//
// Hand-crafted test topologies (nil views) build the same arena — every
// metric resolves to unmeasured/default there, matching what the string
// methods return — so the index path is the only path.

// initArena flattens nbrIdx into CSR form and materializes the directed
// per-edge metric slots and the hostList -> node-index map. Called at merge
// time (and by crafted-topology constructors), after Nodes / nodeIndex /
// nbrIdx / hostFlag / hostList / views are in place.
func (t *Topology) initArena() {
	n := len(t.Nodes)
	t.edgeStart = make([]int32, n+1)
	total := 0
	for i, row := range t.nbrIdx {
		t.edgeStart[i] = int32(total)
		total += len(row)
	}
	t.edgeStart[n] = int32(total)
	t.nbrFlat = make([]int32, total)
	for i, row := range t.nbrIdx {
		lo, hi := t.edgeStart[i], t.edgeStart[i+1]
		copy(t.nbrFlat[lo:hi], row)
		// Re-home the row onto the flat array (full-capacity slice so an
		// append can never bleed into the next row).
		t.nbrIdx[i] = t.nbrFlat[lo:hi:hi]
	}
	t.dirDelay = make([]time.Duration, 2*total)
	t.dirDelayOK = make([]bool, 2*total)
	t.dirJitter = make([]time.Duration, 2*total)
	t.dirRate = make([]int64, 2*total)
	t.dirQueue = make([]int32, 2*total)
	t.dirQueueOK = make([]bool, 2*total)
	for u := 0; u < n; u++ {
		un := t.Nodes[u]
		base := int(t.edgeStart[u])
		for j, v := range t.nbrIdx[u] {
			e := base + j
			vn := t.Nodes[v]
			t.fillDirSlot(2*e, un, vn)
			t.fillDirSlot(2*e+1, vn, un)
		}
	}
	t.hostIdx = make([]int32, len(t.hostList))
	for i, h := range t.hostList {
		if j, ok := t.nodeIndex[h]; ok {
			t.hostIdx[i] = j
		} else {
			t.hostIdx[i] = -1 // host with no current adjacency
		}
	}
}

// fillDirSlot resolves one direction's metrics through the delegating
// string-keyed lookups (the single source of truth for values).
func (t *Topology) fillDirSlot(slot int, from, to string) {
	if d, ok := t.LinkDelay(from, to); ok {
		t.dirDelay[slot] = d
		t.dirDelayOK[slot] = true
	}
	t.dirJitter[slot] = t.LinkJitter(from, to)
	t.dirRate[slot] = t.LinkRate(from, to)
	if q, ok := t.QueueMax(from, to); ok {
		t.dirQueue[slot] = int32(q)
		t.dirQueueOK[slot] = true
	}
}

// NumNodes returns the number of nodes in the merged adjacency.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NodeIndex resolves a node ID to its merged index.
func (t *Topology) NodeIndex(id string) (int32, bool) {
	i, ok := t.nodeIndex[id]
	return i, ok
}

// NodeName returns the ID of node index i.
func (t *Topology) NodeName(i int32) string { return t.Nodes[i] }

// IsHostIdx reports whether node index i is a host.
func (t *Topology) IsHostIdx(i int32) bool { return t.hostFlag[i] }

// HostCount returns the number of known hosts (including hosts with no
// current adjacency).
func (t *Topology) HostCount() int { return len(t.hostList) }

// HostName returns the ID of the j-th host in sorted host order.
func (t *Topology) HostName(j int) string { return t.hostList[j] }

// HostNodeIndex returns the merged node index of the j-th host, or -1 for a
// host with no current adjacency.
func (t *Topology) HostNodeIndex(j int) int32 { return t.hostIdx[j] }

// HostIndex returns id's position in the sorted host list, or -1 if id is
// not a known host.
func (t *Topology) HostIndex(id string) int {
	j := sort.SearchStrings(t.hostList, id)
	if j < len(t.hostList) && t.hostList[j] == id {
		return j
	}
	return -1
}

// csrEdge returns the CSR edge id of directed adjacency (u, v), or -1.
func (t *Topology) csrEdge(u, v int32) int32 {
	lo, hi := t.edgeStart[u], t.edgeStart[u+1]
	row := t.nbrFlat[lo:hi]
	i := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	if i < len(row) && row[i] == v {
		return lo + int32(i)
	}
	return -1
}

// DirSlot returns the metric-slot id for the directed pair from->to: the
// forward CSR edge's even slot when (from, to) is in the adjacency, the
// reverse edge's odd slot when only (to, from) is, and -1 when the pair is
// not adjacent in either direction. Destination-tree hops always resolve
// (the reverse edge is the hop's discovery edge).
func (t *Topology) DirSlot(from, to int32) int32 {
	if e := t.csrEdge(from, to); e >= 0 {
		return 2 * e
	}
	if e := t.csrEdge(to, from); e >= 0 {
		return 2*e + 1
	}
	return -1
}

// SlotDelay returns the latency estimate of a metric slot (ok=false when
// the slot is -1 or the direction was never measured). Equal to LinkDelay
// of the pair the slot was resolved from.
func (t *Topology) SlotDelay(s int32) (time.Duration, bool) {
	if s < 0 || !t.dirDelayOK[s] {
		return 0, false
	}
	return t.dirDelay[s], true
}

// SlotJitter returns the latency standard deviation of a metric slot.
func (t *Topology) SlotJitter(s int32) time.Duration {
	if s < 0 {
		return 0
	}
	return t.dirJitter[s]
}

// SlotRate returns the assumed capacity of a metric slot (the default rate
// for slot -1, matching LinkRate on an unconfigured pair).
func (t *Topology) SlotRate(s int32) int64 {
	if s < 0 {
		return t.defaultRate
	}
	return t.dirRate[s]
}

// SlotQueueMax returns the windowed maximum queue occupancy of the egress
// port behind a metric slot (ok=false when the slot is -1 or the port had
// no in-window report).
func (t *Topology) SlotQueueMax(s int32) (int, bool) {
	if s < 0 || !t.dirQueueOK[s] {
		return 0, false
	}
	return int(t.dirQueue[s]), true
}

// PathCode classifies the outcome of an index-space path walk. Non-OK codes
// map one-to-one onto Path's error cases.
type PathCode uint8

const (
	// PathOK: the walk reached dst.
	PathOK PathCode = iota
	// PathUnknownSrc: src is out of range or has no adjacency.
	PathUnknownSrc
	// PathNoRoute: dst is unknown or the tree has no route from src.
	PathNoRoute
	// PathHostTransit: the tree routes through a mid-path host (at = the
	// host's node index).
	PathHostTransit
	// PathBroken: the tree chain dead-ends mid-walk (at = the node with no
	// next hop).
	PathBroken
	// PathLoop: the walk exceeded the node count (corrupted cyclic tree).
	PathLoop
)

// PathInto walks the destination tree from src to dst, appending the hop
// sequence of node indices (both endpoints included) into scratch[:0]. The
// returned slice re-homes the scratch: callers own it and store it back for
// reuse, so a warmed walk performs zero allocations. at is the offending
// node index for PathHostTransit/PathBroken and -1 otherwise. Pass dst=-1
// for an unresolvable destination (yields PathNoRoute).
func (t *Topology) PathInto(src, dst int32, scratch []int32) (path []int32, code PathCode, at int32) {
	if src < 0 || int(src) >= len(t.Nodes) {
		return scratch[:0], PathUnknownSrc, src
	}
	if src == dst {
		return append(scratch[:0], src), PathOK, -1
	}
	if len(t.nbrIdx[src]) == 0 {
		return scratch[:0], PathUnknownSrc, src
	}
	tree := t.treeForIdx(dst)
	if tree == nil || tree.next[src] == -1 {
		return scratch[:0], PathNoRoute, -1
	}
	path = append(scratch[:0], src)
	cur := src
	for cur != dst {
		if cur != src && t.hostFlag[cur] {
			return path, PathHostTransit, cur
		}
		nxt := tree.next[cur]
		if nxt < 0 {
			return path, PathBroken, cur
		}
		cur = nxt
		path = append(path, cur)
		if len(path) > len(t.Nodes)+1 {
			return path, PathLoop, -1
		}
	}
	return path, PathOK, -1
}

// HopCountInto returns the link count of the learned path src->dst together
// with the walked path (which re-homes scratch, same ownership rule as
// PathInto). The count is meaningful only for PathOK.
func (t *Topology) HopCountInto(src, dst int32, scratch []int32) (int, []int32, PathCode) {
	p, code, _ := t.PathInto(src, dst, scratch)
	return len(p) - 1, p, code
}
