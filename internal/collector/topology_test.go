package collector

import (
	"testing"
	"time"
)

// buildDiamond teaches a collector the diamond n1 - s1 - {s2,s3} - s4 - sched
// via two probes taking each branch.
func buildDiamond(t *testing.T) (*Collector, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	c.HandleProbe(probeFrom("n1", 1, 10*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 2, 2: 8}, egressTS: clk.now},
		devSpec{id: "s2", in: 0, out: 1, egressTS: clk.now},
		devSpec{id: "s4", in: 0, out: 2, egressTS: clk.now},
	))
	clk.now += 10 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 2, 10*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 2, queues: map[int]int{1: 2, 2: 8}, egressTS: clk.now},
		devSpec{id: "s3", in: 0, out: 1, egressTS: clk.now},
		devSpec{id: "s4", in: 1, out: 2, egressTS: clk.now},
	))
	return c, clk
}

func TestPathDeterministicTieBreak(t *testing.T) {
	c, _ := buildDiamond(t)
	topo := c.Snapshot()
	path, err := topo.Path("n1", "sched")
	if err != nil {
		t.Fatal(err)
	}
	// Two equal-length paths exist (via s2 or s3); lexicographic
	// tie-breaking must pick s2, matching netsim's routing rule.
	want := []string{"n1", "s1", "s2", "s4", "sched"}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	if hops, _ := topo.HopCount("n1", "sched"); hops != 4 {
		t.Fatalf("hops %d", hops)
	}
}

func TestPathTrivialAndErrors(t *testing.T) {
	c, _ := buildDiamond(t)
	topo := c.Snapshot()
	p, err := topo.Path("s1", "s1")
	if err != nil || len(p) != 1 {
		t.Fatalf("self path %v %v", p, err)
	}
	if _, err := topo.Path("ghost", "sched"); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := topo.Path("n1", "ghost"); err == nil {
		t.Fatal("unknown destination accepted")
	}
}

func TestHostsDoNotForwardInLearnedTopology(t *testing.T) {
	clk := &fakeClock{now: time.Second}
	c := newTestCollector(clk)
	// n1 -> s1 -> sched and n2 -> s1 -> sched: path n1->n2 must go via s1,
	// never through sched (a host).
	c.HandleProbe(probeFrom("n1", 1, time.Millisecond, devSpec{id: "s1", in: 0, out: 2, egressTS: clk.now}))
	c.HandleProbe(probeFrom("n2", 1, time.Millisecond, devSpec{id: "s1", in: 1, out: 2, egressTS: clk.now}))
	topo := c.Snapshot()
	path, err := topo.Path("n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range path[1 : len(path)-1] {
		if topo.IsHost(n) {
			t.Fatalf("path %v transits host %s", path, n)
		}
	}
}

// craftedTopology builds a Topology directly (same package) with an
// injected shortest-path tree, to exercise Path's defensive branches that a
// well-formed BFS can never produce but a corrupted or hand-fed tree could.
// nodes must be sorted (index order is name order in real snapshots).
func craftedTopology(nodes []string, hosts map[string]bool, neighbors map[string][]string, dst string, tree map[string]string) *Topology {
	t := &Topology{
		Nodes:    nodes,
		hostList: sortedKeys(hosts),
	}
	t.nodeIndex = make(map[string]int32, len(nodes))
	for i, n := range nodes {
		t.nodeIndex[n] = int32(i)
	}
	t.nbrIdx = make([][]int32, len(nodes))
	t.hostFlag = make([]bool, len(nodes))
	for i, n := range nodes {
		t.hostFlag[i] = hosts[n]
		for _, nb := range neighbors[n] {
			t.nbrIdx[i] = append(t.nbrIdx[i], t.nodeIndex[nb])
		}
	}
	crafted := &destTree{next: make([]int32, len(nodes)), dist: make([]int32, len(nodes))}
	for i := range crafted.next {
		crafted.next[i] = -1
		crafted.dist[i] = -1
	}
	for n, parent := range tree {
		crafted.next[t.nodeIndex[n]] = t.nodeIndex[parent]
	}
	t.scratch = map[string]*destTree{dst: crafted}
	t.initArena()
	return t
}

// TestPathHostTransitDefensive: a tree that routes through a host mid-path
// must yield an error, not a path that pretends hosts forward transit
// traffic (and not an infinite walk).
func TestPathHostTransitDefensive(t *testing.T) {
	topo := craftedTopology(
		[]string{"a", "h", "z"},
		map[string]bool{"h": true},
		map[string][]string{"a": {"h"}, "h": {"a", "z"}, "z": {"h"}},
		"z",
		map[string]string{"a": "h", "h": "z"},
	)
	if _, err := topo.Path("a", "z"); err == nil {
		t.Fatal("host-transit path accepted")
	}
	// src itself being a host is fine — hosts originate traffic.
	topoOK := craftedTopology(
		[]string{"h", "s", "z"},
		map[string]bool{"h": true},
		map[string][]string{"h": {"s"}, "s": {"h", "z"}, "z": {"s"}},
		"z",
		map[string]string{"h": "s", "s": "z"},
	)
	p, err := topoOK.Path("h", "z")
	if err != nil || len(p) != 3 {
		t.Fatalf("host source rejected: %v %v", p, err)
	}
}

// TestPathBrokenTreeDefensive: a tree whose chain dead-ends at a node with
// no next hop must error instead of walking into the zero value forever.
func TestPathBrokenTreeDefensive(t *testing.T) {
	topo := craftedTopology(
		[]string{"a", "b", "z"},
		map[string]bool{},
		map[string][]string{"a": {"b"}, "b": {"a"}, "z": nil},
		"z",
		map[string]string{"a": "b"}, // b has no entry: chain breaks
	)
	if _, err := topo.Path("a", "z"); err == nil {
		t.Fatal("broken tree walk accepted")
	}
}

// TestPathLoopDefensive: a cyclic tree (impossible from BFS, possible from
// corruption) must hit the loop guard.
func TestPathLoopDefensive(t *testing.T) {
	topo := craftedTopology(
		[]string{"a", "b", "z"},
		map[string]bool{},
		map[string][]string{"a": {"b"}, "b": {"a"}, "z": nil},
		"z",
		map[string]string{"a": "b", "b": "a"},
	)
	if _, err := topo.Path("a", "z"); err == nil {
		t.Fatal("cyclic tree walk accepted")
	}
}

// TestPathUnknownHostSource: a node known only as a host (marked via
// isHost but absent from the adjacency) is still an unknown source for
// path purposes.
func TestPathUnknownHostSource(t *testing.T) {
	topo := craftedTopology(
		[]string{"z"},
		map[string]bool{"x": true},
		map[string][]string{"z": nil},
		"z",
		map[string]string{},
	)
	if _, err := topo.Path("x", "z"); err == nil {
		t.Fatal("adjacency-less host accepted as source")
	}
}

// TestPathMemoizedTreeShared: repeated Path calls toward one destination
// reuse the memoized tree (one BFS serves all sources).
func TestPathMemoizedTreeShared(t *testing.T) {
	c, _ := buildDiamond(t)
	topo := c.Snapshot()
	if _, err := topo.Path("n1", "sched"); err != nil {
		t.Fatal(err)
	}
	topo.store.mu.RLock()
	tree1 := topo.store.trees["sched"]
	topo.store.mu.RUnlock()
	if tree1 == nil {
		t.Fatal("tree not memoized")
	}
	if _, err := topo.Path("s2", "sched"); err != nil {
		t.Fatal(err)
	}
	topo.store.mu.RLock()
	nTrees := len(topo.store.trees)
	topo.store.mu.RUnlock()
	if nTrees != 1 {
		t.Fatalf("expected a single memoized destination, got %d", nTrees)
	}
}

func TestQueueMaxPerDirection(t *testing.T) {
	c, _ := buildDiamond(t)
	topo := c.Snapshot()
	// s1's egress toward s2 is port 1 (queue 2); toward s3 is port 2
	// (queue 8).
	if q, ok := topo.QueueMax("s1", "s2"); !ok || q != 2 {
		t.Fatalf("s1->s2 queue %d,%v", q, ok)
	}
	if q, ok := topo.QueueMax("s1", "s3"); !ok || q != 8 {
		t.Fatalf("s1->s3 queue %d,%v", q, ok)
	}
	// Unreported port: s2 egress toward s1 has no queue report (s2
	// reported no queues at all).
	if _, ok := topo.QueueMax("s2", "s1"); ok {
		t.Fatal("unreported queue visible")
	}
	// Unknown edge.
	if _, ok := topo.QueueMax("s2", "ghost"); ok {
		t.Fatal("unknown edge visible")
	}
}

func TestSnapshotIsConsistentView(t *testing.T) {
	c, clk := buildDiamond(t)
	topo := c.Snapshot()
	before, _ := topo.LinkDelay("n1", "s1")
	// Mutate the collector afterwards; the snapshot must not change.
	clk.now += 10 * time.Millisecond
	c.HandleProbe(probeFrom("n1", 3, 50*time.Millisecond,
		devSpec{id: "s1", in: 0, out: 1, queues: map[int]int{1: 60}, egressTS: clk.now}))
	after, _ := topo.LinkDelay("n1", "s1")
	if before != after {
		t.Fatal("snapshot mutated by later probe")
	}
	if q, _ := topo.QueueMax("s1", "s2"); q == 60 {
		t.Fatal("snapshot sees post-snapshot queue report")
	}
}

func TestTopologyAccessors(t *testing.T) {
	c, _ := buildDiamond(t)
	topo := c.Snapshot()
	if len(topo.Nodes) == 0 || topo.TakenAt == 0 {
		t.Fatal("snapshot metadata empty")
	}
	hosts := topo.Hosts()
	if len(hosts) != 2 || hosts[0] != "n1" || hosts[1] != "sched" {
		t.Fatalf("hosts %v", hosts)
	}
	if p, ok := topo.EgressPort("s1", "s2"); !ok || p != 1 {
		t.Fatalf("egress port %d,%v", p, ok)
	}
	if _, ok := topo.EgressPort("s1", "ghost"); ok {
		t.Fatal("phantom egress port")
	}
	if _, ok := topo.LinkDelay("ghost", "s1"); ok {
		t.Fatal("phantom link delay")
	}
}
