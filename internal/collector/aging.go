package collector

import (
	"sort"
	"time"
)

// Adjacency aging: learned edges silent for longer than the adjacency TTL
// are evicted at the next view rebuild, and a probe stream whose hop
// sequence changed puts the abandoned edges on accelerated aging so the map
// converges to the new route within a couple of queue windows. All aging
// state is per shard (each shard ages the edges it owns); the rules below
// are identical to the pre-sharding collector.

// adjTTL resolves the effective adjacency TTL: explicit, disabled, or
// derived from the current queue window.
func (c *Collector) adjTTL() time.Duration {
	if c.cfg.AdjacencyTTL < 0 {
		return 0
	}
	if c.cfg.AdjacencyTTL > 0 {
		return c.cfg.AdjacencyTTL
	}
	return DefaultAdjacencyWindows * c.window()
}

// accelerateAgingLocked backdates the last-seen time of every directed edge
// that the old hop sequence used and the new one does not, so those edges
// expire within two queue windows of now (never extending an edge's life).
// An edge still carrying some other stream's probes is rescued by its next
// confirmation before the accelerated deadline hits. Callers must hold the
// mu of every shard owning a node on either path.
func (c *Collector) accelerateAgingLocked(oldPath, newPath []string, now time.Duration) {
	ttl := c.adjTTL()
	if ttl <= 0 {
		return
	}
	kept := make(map[edgeKey]bool, 2*len(newPath))
	for i := 0; i+1 < len(newPath); i++ {
		kept[edgeKey{newPath[i], newPath[i+1]}] = true
		kept[edgeKey{newPath[i+1], newPath[i]}] = true
	}
	deadline := now - ttl + 2*c.window()
	for i := 0; i+1 < len(oldPath); i++ {
		for _, key := range [2]edgeKey{{oldPath[i], oldPath[i+1]}, {oldPath[i+1], oldPath[i]}} {
			if kept[key] {
				continue
			}
			c.backdateEdgeLocked(key, deadline)
		}
	}
}

// backdateEdgeLocked lowers one edge's last-seen time to deadline, never
// extending it. Callers hold the owning shard's mu.
func (c *Collector) backdateEdgeLocked(key edgeKey, deadline time.Duration) {
	sh := c.shardFor(key.from)
	if seen, ok := sh.adjSeen[key]; ok && seen > deadline {
		sh.adjSeen[key] = deadline
	}
}

// pruneAdjLocked evicts every owned edge whose last confirmation is older
// than the adjacency TTL, tombstoning it and notifying the eviction hook
// with its probe silence (the failure-detection latency). Eviction order is
// sorted for deterministic hook invocation within the shard. Measured
// link-delay history is deliberately kept: if the edge comes back, its EWMA
// resumes from the last known estimate instead of cold-starting. Returns
// the earliest deadline at which a surviving edge would expire.
func (sh *shard) pruneAdjLocked(now, ttl time.Duration) (earliestDeadline time.Duration) {
	earliestDeadline = neverExpires
	if ttl <= 0 {
		return earliestDeadline
	}
	cutoff := now - ttl
	var expired []edgeKey
	for key, seen := range sh.adjSeen {
		if seen <= cutoff {
			expired = append(expired, key)
		} else if d := seen + ttl; d < earliestDeadline {
			earliestDeadline = d
		}
	}
	sort.Slice(expired, func(i, j int) bool {
		if expired[i].from != expired[j].from {
			return expired[i].from < expired[j].from
		}
		return expired[i].to < expired[j].to
	})
	for _, key := range expired {
		silence := now - sh.adjSeen[key]
		delete(sh.adjSeen, key)
		if ports := sh.adj[key.from]; ports != nil {
			for port, to := range ports {
				if to == key.to {
					delete(ports, port)
				}
			}
			if len(ports) == 0 {
				delete(sh.adj, key.from)
			}
		}
		sh.adjEvictions++
		sh.evicted[key] = now
		if sh.onEviction != nil {
			sh.onEviction(key.from, key.to, silence)
		}
	}
	return earliestDeadline
}
