package collector

import (
	"math/rand"
	"testing"
	"time"
)

// Tests for the index-space read path: a randomized cross-check of PathInto
// against the string Path API over mutating learned topologies, a per-edge
// equivalence check of the CSR metric slots against the string metric
// accessors, and a property test holding portWindow's monotonic deque equal
// to the windowedQueueMax reference scan.

// TestPathIntoMatchesPath drives a collector through randomized probe-path
// learnings, reroutes, and silence-driven evictions — the same mutation mix
// as the SPT fuzz — and after every mutation compares PathInto (with reused
// scratch, per the store-back idiom) against Path for every node pair, plus
// HopCountInto and the out-of-range/unknown argument conventions.
func TestPathIntoMatchesPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond, Shards: 3})

	origins := []string{"h0", "h1", "h2"}
	switches := []string{"w0", "w1", "w2", "w3", "w4"}
	seqs := map[string]uint64{}

	randomPath := func() []devSpec {
		n := 1 + rng.Intn(3)
		perm := rng.Perm(len(switches))
		devs := make([]devSpec, n)
		for i := 0; i < n; i++ {
			devs[i] = devSpec{id: switches[perm[i]], in: rng.Intn(4), out: rng.Intn(4), egressTS: clk.now}
		}
		return devs
	}

	var scratch []int32
	check := func(iter int) {
		topo := c.Snapshot()
		for _, src := range topo.Nodes {
			isrc, ok := topo.NodeIndex(src)
			if !ok {
				t.Fatalf("iter %d: %s in Nodes but not in node index", iter, src)
			}
			for _, dst := range topo.Nodes {
				idst, _ := topo.NodeIndex(dst)
				want, err := topo.Path(src, dst)
				p, code, _ := topo.PathInto(isrc, idst, scratch)
				scratch = p
				if (err == nil) != (code == PathOK) {
					t.Fatalf("iter %d: Path(%s,%s) err=%v but PathInto code=%v", iter, src, dst, err, code)
				}
				if err != nil {
					continue
				}
				if len(p) != len(want) {
					t.Fatalf("iter %d: PathInto(%s,%s) len %d, Path len %d", iter, src, dst, len(p), len(want))
				}
				for i, idx := range p {
					if topo.NodeName(idx) != want[i] {
						t.Fatalf("iter %d: PathInto(%s,%s)[%d]=%s, Path says %s", iter, src, dst, i, topo.NodeName(idx), want[i])
					}
				}
				hops, hp, hcode := topo.HopCountInto(isrc, idst, scratch)
				scratch = hp
				if hcode != PathOK || hops != len(want)-1 {
					t.Fatalf("iter %d: HopCountInto(%s,%s)=(%d,%v), want (%d,PathOK)", iter, src, dst, hops, hcode, len(want)-1)
				}
			}
			// An unresolvable destination (dst = -1) is never reachable; a
			// src whose adjacency aged out reports unknown-src first, like
			// Path does.
			if _, code, _ := topo.PathInto(isrc, -1, scratch); len(topo.Neighbors(src)) > 0 {
				if code != PathNoRoute {
					t.Fatalf("iter %d: PathInto(%s, -1) code %v, want PathNoRoute", iter, src, code)
				}
			} else if code != PathUnknownSrc {
				t.Fatalf("iter %d: PathInto(%s, -1) code %v, want PathUnknownSrc", iter, src, code)
			}
		}
		if _, code, _ := topo.PathInto(-1, 0, scratch); code != PathUnknownSrc {
			t.Fatalf("iter %d: PathInto(-1, 0) code %v, want PathUnknownSrc", iter, code)
		}
	}

	for iter := 0; iter < 250; iter++ {
		origin := origins[rng.Intn(len(origins))]
		seqs[origin]++
		c.HandleProbe(probeFrom(origin, seqs[origin], time.Duration(1+rng.Intn(10))*time.Millisecond, randomPath()...))
		if rng.Intn(12) == 0 {
			clk.now += 600 * time.Millisecond // long silence: age abandoned edges out
		} else {
			clk.now += time.Duration(20+rng.Intn(120)) * time.Millisecond
		}
		check(iter)
	}
}

// TestArenaSlotsMatchStringMetrics: for every directed CSR edge of a learned
// snapshot, the slot reads must equal the string metric accessors — the
// rankers' per-hop loads are byte-for-byte the values the string path sees.
func TestArenaSlotsMatchStringMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	clk := &fakeClock{now: time.Second}
	c := New("sched", clk.Now, Config{QueueWindow: 200 * time.Millisecond, Shards: 2})

	switches := []string{"w0", "w1", "w2", "w3"}
	for seq := uint64(1); seq <= 60; seq++ {
		perm := rng.Perm(len(switches))
		n := 1 + rng.Intn(3)
		devs := make([]devSpec, n)
		for i := 0; i < n; i++ {
			devs[i] = devSpec{
				id: switches[perm[i]], in: rng.Intn(4), out: rng.Intn(4),
				queues:   map[int]int{rng.Intn(4): rng.Intn(100)},
				egressTS: clk.now,
			}
		}
		c.HandleProbe(probeFrom("h0", seq, time.Duration(1+rng.Intn(8))*time.Millisecond, devs...))
		clk.now += time.Duration(10+rng.Intn(80)) * time.Millisecond
	}

	topo := c.Snapshot()
	checked := 0
	for ui, u := range topo.Nodes {
		iu := int32(ui)
		for _, v := range topo.Neighbors(u) {
			iv, ok := topo.NodeIndex(v)
			if !ok {
				t.Fatalf("neighbor %s of %s not indexed", v, u)
			}
			slot := topo.DirSlot(iu, iv)
			if slot < 0 {
				t.Fatalf("no slot for CSR edge %s->%s", u, v)
			}
			wd, wok := topo.LinkDelay(u, v)
			if gd, gok := topo.SlotDelay(slot); gd != wd || gok != wok {
				t.Fatalf("SlotDelay(%s->%s)=(%v,%v), LinkDelay (%v,%v)", u, v, gd, gok, wd, wok)
			}
			if g, w := topo.SlotJitter(slot), topo.LinkJitter(u, v); g != w {
				t.Fatalf("SlotJitter(%s->%s)=%v, LinkJitter %v", u, v, g, w)
			}
			if g, w := topo.SlotRate(slot), topo.LinkRate(u, v); g != w {
				t.Fatalf("SlotRate(%s->%s)=%d, LinkRate %d", u, v, g, w)
			}
			wq, wqok := topo.QueueMax(u, v)
			if gq, gqok := topo.SlotQueueMax(slot); gq != wq || gqok != wqok {
				t.Fatalf("SlotQueueMax(%s->%s)=(%d,%v), QueueMax (%d,%v)", u, v, gq, gqok, wq, wqok)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no CSR edges learned; fuzz driver broken")
	}
}

// TestPortWindowMatchesScan holds portWindow's monotonic-deque answer equal
// to the windowedQueueMax reference scan over randomized report sequences —
// including duplicate timestamps, occasional out-of-order arrivals (the
// sorted-insert rebuild path), and interleaved pruning.
func TestPortWindowMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const window = 200 * time.Millisecond
	for trial := 0; trial < 50; trial++ {
		w := &portWindow{}
		now := time.Second
		alive := true
		for step := 0; step < 120; step++ {
			at := now
			if rng.Intn(10) == 0 && len(w.reports) > 0 {
				// Out-of-order: land strictly before the newest report.
				at = w.reports[len(w.reports)-1].at - time.Duration(1+rng.Intn(50))*time.Millisecond
			}
			w.push(queueReport{at: at, maxQueue: rng.Intn(60), packets: uint32(step)})
			if rng.Intn(8) == 0 {
				alive = w.prune(now, window)
			}
			wantBest, wantFound, wantExp := windowedQueueMax(w.reports, now, window)
			best, found, exp := w.windowMax(now, window)
			if best != wantBest || found != wantFound || exp != wantExp {
				t.Fatalf("trial %d step %d: windowMax=(%d,%v,%v), scan=(%d,%v,%v)",
					trial, step, best, found, exp, wantBest, wantFound, wantExp)
			}
			if alive != (len(w.reports) > 0) {
				t.Fatalf("trial %d step %d: prune liveness %v with %d reports", trial, step, alive, len(w.reports))
			}
			if rng.Intn(4) != 0 {
				now += time.Duration(rng.Intn(90)) * time.Millisecond
			}
		}
		// Fully aged out: the window must report empty and prune must say so.
		now += 2 * window
		if best, found, _ := w.windowMax(now, window); found || best != 0 {
			t.Fatalf("trial %d: aged-out window reported (%d,%v)", trial, best, found)
		}
		if w.prune(now, window) {
			t.Fatalf("trial %d: prune kept a fully aged-out window alive", trial)
		}
	}
	// A nil window (port never reported) answers empty.
	var nilw *portWindow
	if best, found, _ := nilw.windowMax(time.Second, window); found || best != 0 {
		t.Fatalf("nil window reported (%d,%v)", best, found)
	}
}
