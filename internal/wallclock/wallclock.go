// Package wallclock is the sanctioned wall-clock seam for sim-side code.
//
// The simulation packages are bit-reproducible per seed: simulated time
// comes from simtime.Engine and the simdeterminism analyzer (internal/lint)
// rejects direct time.Now/time.Sleep calls there. Benchmark harnesses still
// need real elapsed time — measuring how fast the scheduler answers queries
// is a statement about this machine, not about the simulated network — so
// that one legitimate use goes through this package. The allowlist is
// structural: wallclock is not a sim-side package, and a reading obtained
// here is data (a time.Time / time.Duration value), which cannot feed back
// into simulation decisions without tripping the analyzer at the call site
// that tries to read the clock again.
//
// Keep this package free of anything but clock reads: the moment it grows
// scheduling helpers, the structural boundary stops meaning anything.
package wallclock

import "time"

// Now returns the current wall-clock reading.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since start.
func Since(start time.Time) time.Duration { return time.Since(start) }
