// Command intlint runs the repo-specific static-analysis suite defined in
// internal/lint. It is a vet tool: the same binary speaks go vet's
// unitchecker protocol, so the usual invocation is
//
//	go vet -vettool=$(go env GOPATH)/bin/intlint ./...
//
// or, via the repository helper target, simply
//
//	go build -o bin/intlint ./cmd/intlint && go vet -vettool=bin/intlint ./...
//
// Three modes:
//
//	intlint ./...          delegate to "go vet -vettool=<self> ./..." (the
//	                       ergonomic front door; reuses go's build cache)
//	intlint -source [dir]  type-check the module from source and analyze it
//	                       without invoking the go tool (works offline; used
//	                       by the analysistest harness and CI fallback)
//	intlint <unit>.cfg     unitchecker mode, invoked by go vet per package
//
// The unitchecker protocol, as spoken by cmd/go: the tool is probed with
// -V=full (a content-addressed version line that keys go's build cache) and
// -flags (a JSON description of supported flags), then invoked once per
// package with the path to a JSON "vet.cfg". Dependency packages set
// VetxOnly — the tool only records its facts file and exits — while root
// packages carry GoFiles plus an ImportMap/PackageFile table resolving every
// import to compiler export data. This suite is factless, so the facts file
// is a fixed placeholder.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"intsched/internal/lint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// No tool-specific flags: the suite always runs all analyzers.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	case len(args) >= 1 && (args[0] == "-source" || args[0] == "-json" ||
		strings.HasPrefix(args[0], "-baseline") || strings.HasPrefix(args[0], "-write-baseline")):
		// -json / -baseline / -write-baseline imply source mode.
		os.Exit(runSource(args))
	case len(args) >= 1 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help"):
		usage()
	default:
		os.Exit(delegate(args))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: intlint [packages]          (runs go vet -vettool=intlint)\n")
	fmt.Fprintf(os.Stderr, "       intlint -source [moduledir] (source mode, no go tool needed)\n\n")
	fmt.Fprintf(os.Stderr, "source-mode flags (each implies -source when leading):\n")
	fmt.Fprintf(os.Stderr, "  -json                  emit diagnostics as one JSON report on stdout\n")
	fmt.Fprintf(os.Stderr, "  -baseline file         suppress findings recorded in file; exit 1 on\n")
	fmt.Fprintf(os.Stderr, "                         fresh findings or stale (fixed) baseline entries\n")
	fmt.Fprintf(os.Stderr, "  -write-baseline file   record the current findings as the baseline\n\n")
	fmt.Fprintf(os.Stderr, "analyzers:\n")
	for _, a := range lint.Analyzers() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, doc)
	}
}

// printVersion emits the content-addressed version line cmd/go uses to
// fingerprint the tool in its build cache: rebuilding intlint with changed
// analyzers changes the hash and invalidates cached vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(exe); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

// delegate re-invokes the go tool with this binary as the vet tool.
func delegate(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
		return 2
	}
	return 0
}

// vetConfig is the subset of cmd/go's per-package vet.cfg that intlint
// consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit described by a vet.cfg file.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "intlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The suite exports no facts; the placeholder keeps go's vetx
	// bookkeeping satisfied for dependents.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("intlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	// Imports resolve through the compiler export data cmd/go already built:
	// ImportMap canonicalizes the path as written to the path as compiled,
	// and PackageFile locates its export file.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "intlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	findings, err := lint.RunAnalyzers(fset, files, pkg, info, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
		return 2
	}
	return report(fset, findings)
}

// sourceOpts are the source-mode flags (-json, -baseline, -write-baseline
// imply source mode when leading).
type sourceOpts struct {
	root          string
	jsonOut       bool
	baseline      string
	writeBaseline string
}

func parseSourceArgs(args []string) (sourceOpts, error) {
	opts := sourceOpts{root: "."}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-source":
			// mode marker
		case a == "-json":
			opts.jsonOut = true
		case a == "-baseline":
			i++
			if i >= len(args) {
				return opts, fmt.Errorf("-baseline requires a file argument")
			}
			opts.baseline = args[i]
		case strings.HasPrefix(a, "-baseline="):
			opts.baseline = strings.TrimPrefix(a, "-baseline=")
		case a == "-write-baseline":
			i++
			if i >= len(args) {
				return opts, fmt.Errorf("-write-baseline requires a file argument")
			}
			opts.writeBaseline = args[i]
		case strings.HasPrefix(a, "-write-baseline="):
			opts.writeBaseline = strings.TrimPrefix(a, "-write-baseline=")
		case strings.HasPrefix(a, "-"):
			return opts, fmt.Errorf("unknown source-mode flag %s", a)
		default:
			opts.root = a
		}
	}
	return opts, nil
}

// runSource type-checks the whole module from source — no go tool, no
// export data, no network — and runs the suite over every package. With
// -json it emits one JSONReport on stdout; with -baseline it suppresses
// known findings and fails on fresh findings OR stale baseline entries
// (the baseline only ratchets down); -write-baseline regenerates the file
// from the current findings.
func runSource(args []string) int {
	opts, err := parseSourceArgs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
		return 2
	}
	root, err := findModuleRoot(opts.root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
		return 2
	}
	var diags []lint.JSONDiagnostic
	for _, lp := range pkgs {
		findings, err := lint.RunAnalyzers(loader.Fset, lp.Files, lp.Pkg, lp.Info, lint.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
			return 2
		}
		diags = append(diags, lint.FindingsToJSON(loader.Fset, root, findings)...)
	}
	lint.SortDiagnostics(diags)

	if opts.writeBaseline != "" {
		if err := lint.WriteBaseline(opts.writeBaseline, lint.BaselineFromDiagnostics(diags)); err != nil {
			fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "intlint: wrote %d finding(s) to %s\n", len(diags), opts.writeBaseline)
		return 0
	}

	fresh := len(diags)
	var stale []lint.BaselineEntry
	if opts.baseline != "" {
		b, err := lint.LoadBaseline(opts.baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
			return 2
		}
		fresh, stale = b.Apply(diags)
	}

	if opts.jsonOut {
		if diags == nil {
			diags = []lint.JSONDiagnostic{}
		}
		rep := lint.JSONReport{Module: loader.ModulePath, Diagnostics: diags, Stale: stale}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "intlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			if d.Baselined {
				continue
			}
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
		}
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "stale baseline entry (fixed? remove it): %s %s: %s\n", e.Analyzer, e.File, e.Message)
		}
	}
	if fresh > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found at or above %s", dir)
		}
		dir = parent
	}
}

// report prints findings in go vet's file:line:col style and returns the
// exit code contribution.
func report(fset *token.FileSet, findings []lint.Finding) int {
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(f.Pos), f.Message, f.Analyzer)
	}
	return 1
}
