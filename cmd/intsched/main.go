// Command intsched runs the live scheduler: the INT collector daemon that
// ingests probe datagrams over UDP, learns the network topology, and serves
// delay/bandwidth ranking queries over TCP.
//
// Example:
//
//	intsched -id sched -udp 127.0.0.1:7001 -tcp 127.0.0.1:7002
//
// The daemon prints a coverage report (fresh vs stale devices) every
// -report interval so operators can see whether probe routes cover the
// network — the paper's probe-coverage concern made observable.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intsched/internal/core"
	"intsched/internal/live"
)

func main() {
	var (
		id       = flag.String("id", "sched", "scheduler node name")
		udp      = flag.String("udp", "127.0.0.1:7001", "UDP bind address for probe ingestion")
		tcp      = flag.String("tcp", "127.0.0.1:7002", "TCP bind address for the query API")
		httpAddr = flag.String("http", "", "HTTP bind address for /metrics and /healthz (empty disables)")
		k        = flag.Duration("k", core.DefaultK, "queue occupancy to latency conversion factor")
		rate     = flag.Int64("link-rate", 20_000_000, "assumed link capacity (bps) for bandwidth estimates")
		window   = flag.Duration("queue-window", 0, "queue report freshness window (default: collector default)")
		degraded = flag.Duration("degraded-after", 0, "probe silence per edge before /healthz degrades (default: 3 queue windows)")
		adjTTL   = flag.Duration("adjacency-ttl", 0, "probe silence before a learned link ages out of the topology (default: 5 queue windows; negative disables aging)")
		exclUnre = flag.Bool("exclude-unreachable", false, "recovery policy: drop candidates whose learned path aged out from answers")
		report   = flag.Duration("report", 10*time.Second, "coverage report interval (0 disables)")
		shards   = flag.Int("shards", 1, "collector link-state shards; probes through disjoint partitions ingest concurrently")
		ingestQ  = flag.Int("ingest-queue", 0, "per-shard async ingest queue depth (0 keeps ingest synchronous on the UDP receive loop)")
		adaptive = flag.Bool("adaptive", false, "run the adaptive cadence control loop: per-stream probe-interval directives sent back along probe return paths (agents must opt in with intprobe -adaptive)")
		probeBgt = flag.Float64("probe-budget", 0, "adaptive probe budget as a fraction (0,1] of the full static rate (0 disables the cap)")
		adaptBas = flag.Duration("adaptive-base", 100*time.Millisecond, "fleet static probe interval anchoring the adaptive cadence clamps")
	)
	flag.Parse()

	daemon, err := live.NewCollectorDaemon(*id, live.DaemonConfig{
		UDPAddr:            *udp,
		TCPAddr:            *tcp,
		HTTPAddr:           *httpAddr,
		K:                  *k,
		LinkRateBps:        *rate,
		QueueWindow:        *window,
		DegradedAfter:      *degraded,
		AdjacencyTTL:       *adjTTL,
		ExcludeUnreachable: *exclUnre,
		Shards:             *shards,
		IngestQueue:        *ingestQ,
		Adaptive:           *adaptive,
		AdaptiveBase:       *adaptBas,
		ProbeBudget:        *probeBgt,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "intsched: %v\n", err)
		os.Exit(1)
	}
	defer daemon.Close()
	fmt.Printf("intsched: node %s, probes on udp://%s, queries on tcp://%s\n",
		daemon.ID(), daemon.UDPAddr(), daemon.QueryAddr())
	if daemon.HTTPAddr() != "" {
		fmt.Printf("intsched: metrics on http://%s/metrics, health on http://%s/healthz\n",
			daemon.HTTPAddr(), daemon.HTTPAddr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *report > 0 {
		ticker = time.NewTicker(*report)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-tick:
			st := daemon.Collector().Stats()
			ds := daemon.Stats()
			cov := daemon.Collector().Coverage()
			cs := daemon.CacheStats()
			health := daemon.Health().Evaluate()
			hitRate := 0.0
			if total := cs.Hits + cs.Misses; total > 0 {
				hitRate = float64(cs.Hits) / float64(total)
			}
			fmt.Printf("intsched: health=%s probes=%d drops=%d/%d/%d ingest-drops=%d stale=%d records=%d epoch=%d rank-cache hit=%.0f%% fresh=%v stale-devs=%v\n",
				health.Status, ds.ProbesReceived,
				ds.DatagramErrors, ds.UnexpectedKinds, ds.PayloadErrors,
				st.IngestDrops, st.ProbesOutOfOrder, st.RecordsParsed,
				daemon.Collector().Epoch(), hitRate*100, cov.Fresh, cov.Stale)
			if *shards > 1 {
				fmt.Printf("intsched:   shard epochs %v\n", daemon.Collector().EpochVector())
			}
			for _, r := range health.Reasons {
				fmt.Printf("intsched:   degraded: %s\n", r)
			}
		case <-stop:
			fmt.Println("\nintsched: shutting down")
			return
		}
	}
}
