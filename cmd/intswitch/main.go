// Command intswitch runs one live soft switch: a userspace P4-style
// forwarder that moves overlay datagrams between rate-limited egress queues
// and stamps INT telemetry into probe packets.
//
// Ports and routes are given as repeatable flags:
//
//	intswitch -id s1 -listen 127.0.0.1:7101 -rate 20000000 \
//	    -port n1=127.0.0.1:7201 -port s2=127.0.0.1:7102 \
//	    -route n1=0 -route sched=1 -route e1=1
//
// Port indices in -route refer to the order of -port flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"intsched/internal/live"
)

// kvList collects repeatable key=value flags.
type kvList []string

func (l *kvList) String() string { return strings.Join(*l, ",") }

func (l *kvList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("expected key=value, got %q", v)
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		id       = flag.String("id", "s1", "switch node name")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP bind address")
		rate     = flag.Int64("rate", live.DefaultRateBps, "egress rate per port (bps)")
		queueCap = flag.Int("queue", live.DefaultQueueCap, "egress queue capacity (packets)")
		stats    = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
		ports    kvList
		routes   kvList
	)
	flag.Var(&ports, "port", "neighbor=udpaddr (repeatable; index = declaration order)")
	flag.Var(&routes, "route", "dstnode=portindex (repeatable)")
	flag.Parse()

	sw, err := live.NewSoftSwitch(*id, *listen, *rate, *queueCap)
	if err != nil {
		fatal(err)
	}
	defer sw.Close()
	for _, p := range ports {
		k, v, _ := strings.Cut(p, "=")
		if _, err := sw.AddPort(k, v); err != nil {
			fatal(err)
		}
	}
	for _, r := range routes {
		k, v, _ := strings.Cut(r, "=")
		idx, err := strconv.Atoi(v)
		if err != nil {
			fatal(fmt.Errorf("route %q: %w", r, err))
		}
		if err := sw.SetRoute(k, idx); err != nil {
			fatal(err)
		}
	}
	sw.Start()
	fmt.Printf("intswitch: %s forwarding on udp://%s (%d ports, %.0f Mbps/port)\n",
		sw.ID(), sw.Addr(), len(ports), float64(*rate)/1e6)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *stats > 0 {
		t := time.NewTicker(*stats)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			fmt.Printf("intswitch: %s forwarded=%d dropped=%d\n", sw.ID(), sw.Forwarded, sw.Drops)
		case <-stop:
			fmt.Println("\nintswitch: shutting down")
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "intswitch: %v\n", err)
	os.Exit(1)
}
