// Command intbench regenerates every table and figure from the paper's
// evaluation section, printing the same rows/series the paper reports.
//
//	intbench                  # everything (full size: 200 tasks, Fig 3 at 300 s)
//	intbench -exp fig5        # one experiment
//	intbench -tasks 60 -fig3dur 30s   # scaled-down quick pass
//	intbench -parallel 1      # force serial execution (output is byte-identical)
//
// Experiments: table1, fig3, fig5, fig6, fig7, fig8, fig9, ablation, faults,
// qps.
// The parbench experiment (not part of "all") measures the worker-pool
// speedup and writes results/BENCH_parallel.json. The scale experiment
// (also by name only) drives the sharded collector on generated Clos and
// metro fabrics and writes results/BENCH_scale.json; -scale-smoke shrinks
// its fabrics to CI size. The telemetry experiment (by name only) sweeps
// deterministic vs probabilistic PINT-style telemetry and writes
// results/BENCH_telemetry.json; -telemetry-smoke shrinks it to CI size. The
// hotpath experiment (by name only) micro-benchmarks the index-space read
// path against the string APIs and writes results/BENCH_hotpath.json. The
// adaptive experiment (by name only) compares static vs controller-driven
// probe cadence at several telemetry budgets and writes
// results/BENCH_adaptive.json; -adaptive-smoke shrinks it to CI size.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"intsched/internal/core"
	"intsched/internal/dataplane"
	"intsched/internal/experiment"
	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/stats"
	"intsched/internal/workload"
)

var (
	seed       = flag.Int64("seed", 42, "random seed")
	seeds      = flag.Int("seeds", 1, "replicate fig5/6/7 across this many seeds and report mean±std gains")
	tasks      = flag.Int("tasks", 200, "tasks per experiment run (paper: 200)")
	fig3dur    = flag.Duration("fig3dur", 300*time.Second, "measurement duration per Fig 3 utilization level (paper: 300s)")
	expFlag    = flag.String("exp", "all", "comma-separated experiments: table1,fig3,fig5,fig6,fig7,fig8,fig9,ablation,faults,qps,all (plus parbench, scale, telemetry, hotpath, and adaptive, by name only)")
	queries    = flag.Int("queries", 50_000, "ranking queries per mode in the qps experiment")
	parallel   = flag.Int("parallel", 0, "worker pool size for independent experiment cells (0 = GOMAXPROCS, 1 = serial); output is byte-identical at any setting")
	scaleSmoke = flag.Bool("scale-smoke", false, "scale experiment: shrink the fabrics to CI size (small Clos + 2-region metro)")
	telemSmoke = flag.Bool("telemetry-smoke", false, "telemetry experiment: shrink to CI size (fewer tasks, two sampling rates, 2-region metro)")
	adaptSmoke = flag.Bool("adaptive-smoke", false, "adaptive experiment: shrink to CI size (fewer tasks, one budget)")
)

// pool runs independent scenario cells; initialized in main from -parallel.
var pool *experiment.Pool

func main() {
	flag.Parse()
	pool = experiment.NewPool(*parallel)
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "intbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	run("table1", table1)
	run("fig3", fig3)
	run("fig5", fig5)
	run("fig6", fig6)
	run("fig7", fig7)
	run("fig8", fig8)
	run("fig9", fig9)
	run("ablation", ablation)
	run("faults", faults)
	run("qps", qps)
	// parbench re-runs the comparison grid at several pool sizes, and scale
	// builds metro-size fabrics, so both only run when asked for by name.
	for _, extra := range []struct {
		name string
		fn   func() error
	}{{"parbench", parbench}, {"scale", scale}, {"telemetry", telemetryExp}, {"hotpath", hotpath}, {"adaptive", adaptiveExp}} {
		if !want[extra.name] {
			continue
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n", extra.name)
		if err := extra.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "intbench: %s: %v\n", extra.name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", extra.name, time.Since(start).Round(time.Millisecond))
	}
}

// scale drives the sharded collector on generated fabrics — a >=200-switch
// Clos and a >=1000-edge-server metro by default — sweeping the shard count
// per topology, and writes results/BENCH_scale.json. The per-cell digest
// (FNV-1a over every ranked answer) is the determinism contract: Scale
// itself fails if any shard count diverges from the single-shard baseline,
// and the printed digest lines are diffed across -parallel widths in CI.
func scale() error {
	res, err := pool.Scale(experiment.ScaleConfig{Seed: *seed, Smoke: *scaleSmoke})
	if err != nil {
		return err
	}
	tb := stats.NewTable("topology", "shards", "switches", "hosts", "queries/s", "snapshot p50", "snapshot p99", "ingest drops", "probes")
	for _, c := range res.Cells {
		tb.AddRow(c.Topo, c.Shards, c.Switches, c.Hosts, fmt.Sprintf("%.0f", c.QPS),
			c.SnapshotP50.Round(time.Microsecond), c.SnapshotP99.Round(time.Microsecond),
			c.IngestDrops, c.ProbesReceived)
	}
	fmt.Println(tb.String())
	for _, c := range res.Cells {
		fmt.Printf("scale digest %s shards=%d %s\n", c.Topo, c.Shards, c.Digest)
	}
	fmt.Println("(every shard count reproduced the single-shard digest; batched ranking via RankBatch, one snapshot per probe round)")

	type cellJSON struct {
		Topo           string  `json:"topo"`
		Shards         int     `json:"shards"`
		Partitions     int     `json:"partitions"`
		Switches       int     `json:"switches"`
		Hosts          int     `json:"hosts"`
		Queries        int     `json:"queries"`
		QPS            float64 `json:"qps"`
		SnapshotP50Us  int64   `json:"snapshot_p50_us"`
		SnapshotP99Us  int64   `json:"snapshot_p99_us"`
		IngestDrops    uint64  `json:"ingest_drops"`
		ProbesReceived uint64  `json:"probes_received"`
		Digest         string  `json:"digest"`
		Seconds        float64 `json:"seconds"`
	}
	report := struct {
		Bench string     `json:"bench"`
		Smoke bool       `json:"smoke"`
		Seed  int64      `json:"seed"`
		CPUs  int        `json:"cpus"`
		Cores int        `json:"cores"`
		Cells []cellJSON `json:"cells"`
	}{
		Bench: "scale",
		Smoke: *scaleSmoke,
		Seed:  *seed,
		CPUs:  runtime.NumCPU(),
		Cores: runtime.GOMAXPROCS(0),
	}
	for _, c := range res.Cells {
		report.Cells = append(report.Cells, cellJSON{
			Topo: c.Topo, Shards: c.Shards, Partitions: c.Partitions,
			Switches: c.Switches, Hosts: c.Hosts, Queries: c.Queries, QPS: c.QPS,
			SnapshotP50Us: c.SnapshotP50.Microseconds(), SnapshotP99Us: c.SnapshotP99.Microseconds(),
			IngestDrops: c.IngestDrops, ProbesReceived: c.ProbesReceived,
			Digest: c.Digest, Seconds: c.Elapsed.Seconds(),
		})
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile("results/BENCH_scale.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote results/BENCH_scale.json")
	return nil
}

// telemetryExp sweeps deterministic vs probabilistic (PINT-style) telemetry:
// the faults workload replays once per mode/rate for scheduling quality, and
// a probe-only metro rig measures telemetry bytes-on-wire per rate. The
// per-cell digest over placement decisions is the identity contract —
// Telemetry itself fails if p=1.0 diverges from the deterministic baseline,
// and the printed digest lines are diffed across -parallel widths in CI.
func telemetryExp() error {
	res, err := pool.Telemetry(experiment.TelemetryConfig{
		Seed:      *seed,
		TaskCount: *tasks,
		Smoke:     *telemSmoke,
	})
	if err != nil {
		return err
	}
	fmt.Println("scheduling quality under the faults schedule, per telemetry configuration:")
	fmt.Println(res.QualityTable())
	fmt.Println("telemetry bytes-on-wire, probe-only metro rig:")
	fmt.Println(res.OverheadTable())
	for _, c := range res.Quality {
		fmt.Printf("telemetry digest %s %s\n", c.Mode, c.Digest)
	}
	fmt.Println("(p=1.00 reproduced the deterministic digest; lower rates trade probe bytes for reassembly freshness)")

	type qualityJSON struct {
		Mode                  string  `json:"mode"`
		Rate                  float64 `json:"rate"`
		Decisions             int     `json:"decisions"`
		Mis                   int     `json:"mis"`
		MisPct                float64 `json:"mis_pct"`
		MeanCompletionMs      float64 `json:"mean_completion_ms"`
		Incomplete            int     `json:"incomplete"`
		TelemetryBytes        uint64  `json:"telemetry_bytes"`
		RecordsReassembled    uint64  `json:"records_reassembled"`
		ReassemblyCompletions uint64  `json:"reassembly_completions"`
		Digest                string  `json:"digest"`
	}
	type overheadJSON struct {
		Mode           string  `json:"mode"`
		Rate           float64 `json:"rate"`
		Topo           string  `json:"topo"`
		Probes         uint64  `json:"probes"`
		TelemetryBytes uint64  `json:"telemetry_bytes"`
		BytesPerProbe  float64 `json:"bytes_per_probe"`
		Reduction      float64 `json:"reduction"`
	}
	report := struct {
		Bench    string         `json:"bench"`
		Smoke    bool           `json:"smoke"`
		Seed     int64          `json:"seed"`
		Tasks    int            `json:"tasks"`
		Quality  []qualityJSON  `json:"quality"`
		Overhead []overheadJSON `json:"overhead"`
	}{
		Bench: "telemetry",
		Smoke: *telemSmoke,
		Seed:  *seed,
		Tasks: res.Cfg.TaskCount,
	}
	for _, c := range res.Quality {
		report.Quality = append(report.Quality, qualityJSON{
			Mode: c.Mode, Rate: c.Rate, Decisions: c.Decisions, Mis: c.Mis, MisPct: c.MisPct,
			MeanCompletionMs: float64(c.MeanCompletion.Microseconds()) / 1000,
			Incomplete:       c.Incomplete, TelemetryBytes: c.TelemetryBytes,
			RecordsReassembled: c.RecordsReassembled, ReassemblyCompletions: c.ReassemblyCompletions,
			Digest: c.Digest,
		})
	}
	for _, c := range res.Overhead {
		report.Overhead = append(report.Overhead, overheadJSON{
			Mode: c.Mode, Rate: c.Rate, Topo: c.Topo, Probes: c.Probes,
			TelemetryBytes: c.TelemetryBytes, BytesPerProbe: c.BytesPerProbe, Reduction: c.Reduction,
		})
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile("results/BENCH_telemetry.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote results/BENCH_telemetry.json")
	return nil
}

// adaptiveExp sweeps static vs controller-driven probe cadence over the
// faults workload at several telemetry budgets. The experiment itself
// enforces the control loop's claims (fewer probe bytes than static-full,
// no worse mis-scheduling or fault detection than the equal-budget static
// cell, back-offs actually engaged); the printed digest lines fold the
// controller's decision counters and are diffed across -parallel widths in
// CI to prove the control loop replays deterministically.
func adaptiveExp() error {
	res, err := pool.Adaptive(experiment.AdaptiveConfig{
		Seed:      *seed,
		TaskCount: *tasks,
		Smoke:     *adaptSmoke,
	})
	if err != nil {
		return err
	}
	fmt.Println("static vs adaptive probe cadence under the faults schedule, per telemetry budget:")
	fmt.Println(res.Table())
	for _, c := range res.Cells {
		fmt.Printf("adaptive digest %s %s\n", c.Name, c.Digest)
	}
	fmt.Println("(adaptive cells undercut static-full bytes at equal-or-better mis rate and detection latency)")

	type cellJSON struct {
		Name             string  `json:"name"`
		Budget           float64 `json:"budget"`
		Adaptive         bool    `json:"adaptive"`
		ProbeIntervalMs  float64 `json:"probe_interval_ms"`
		Decisions        int     `json:"decisions"`
		Mis              int     `json:"mis"`
		MisPct           float64 `json:"mis_pct"`
		MeanCompletionMs float64 `json:"mean_completion_ms"`
		Incomplete       int     `json:"incomplete"`
		ProbesSent       uint64  `json:"probes_sent"`
		TelemetryBytes   uint64  `json:"telemetry_bytes"`
		Evictions        int     `json:"evictions"`
		MaxDetectMs      float64 `json:"max_detect_ms"`
		Directives       uint64  `json:"directives"`
		Tightens         uint64  `json:"tightens"`
		SilenceTightens  uint64  `json:"silence_tightens"`
		Backoffs         uint64  `json:"backoffs"`
		BudgetClamps     uint64  `json:"budget_clamps"`
		Digest           string  `json:"digest"`
	}
	report := struct {
		Bench string     `json:"bench"`
		Smoke bool       `json:"smoke"`
		Seed  int64      `json:"seed"`
		Tasks int        `json:"tasks"`
		Cells []cellJSON `json:"cells"`
	}{
		Bench: "adaptive",
		Smoke: *adaptSmoke,
		Seed:  *seed,
		Tasks: res.Cfg.TaskCount,
	}
	for _, c := range res.Cells {
		report.Cells = append(report.Cells, cellJSON{
			Name: c.Name, Budget: c.Budget, Adaptive: c.Adaptive,
			ProbeIntervalMs: float64(c.ProbeInterval.Microseconds()) / 1000,
			Decisions:       c.Decisions, Mis: c.Mis, MisPct: c.MisPct,
			MeanCompletionMs: float64(c.MeanCompletion.Microseconds()) / 1000,
			Incomplete:       c.Incomplete, ProbesSent: c.ProbesSent,
			TelemetryBytes: c.TelemetryBytes, Evictions: c.Evictions,
			MaxDetectMs: float64(c.MaxDetect.Microseconds()) / 1000,
			Directives:  c.Directives, Tightens: c.Tightens,
			SilenceTightens: c.SilenceTightens, Backoffs: c.Backoffs,
			BudgetClamps: c.BudgetClamps, Digest: c.Digest,
		})
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile("results/BENCH_adaptive.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote results/BENCH_adaptive.json")
	return nil
}

// hotpath micro-benchmarks the index-space scheduler read path against the
// string APIs it replaced — path walks, per-hop metric reads, warm single
// queries, warm batches — and writes results/BENCH_hotpath.json. Each cell
// digests both variants and fails on divergence, so the reported speedups
// are backed by byte-identical answers.
func hotpath() error {
	res, err := experiment.Hotpath(experiment.HotpathConfig{})
	if err != nil {
		return err
	}
	tb := stats.NewTable("cell", "ops/sweep", "string ns/op", "index ns/op", "speedup", "string allocs/op", "index allocs/op")
	for _, c := range res.Cells {
		tb.AddRow(c.Name, c.Ops,
			fmt.Sprintf("%.0f", c.OldNsOp), fmt.Sprintf("%.0f", c.NewNsOp),
			fmt.Sprintf("%.1fx", c.Speedup()),
			fmt.Sprintf("%.2f", c.OldAllocsOp), fmt.Sprintf("%.2f", c.NewAllocsOp))
	}
	fmt.Println(tb.String())
	for _, c := range res.Cells {
		fmt.Printf("hotpath digest %s %s\n", c.Name, c.Digest)
	}
	fmt.Println("(every cell's index-path digest matched its string-path digest; timings are wall-clock, allocs are exact Mallocs deltas)")

	type cellJSON struct {
		Cell        string  `json:"cell"`
		Ops         int     `json:"ops_per_sweep"`
		OldNsOp     float64 `json:"string_ns_op"`
		NewNsOp     float64 `json:"index_ns_op"`
		Speedup     float64 `json:"speedup"`
		OldAllocsOp float64 `json:"string_allocs_op"`
		NewAllocsOp float64 `json:"index_allocs_op"`
		Digest      string  `json:"digest"`
	}
	report := struct {
		Bench string     `json:"bench"`
		CPUs  int        `json:"cpus"`
		Cores int        `json:"cores"`
		Cells []cellJSON `json:"cells"`
	}{
		Bench: "hotpath",
		CPUs:  runtime.NumCPU(),
		Cores: runtime.GOMAXPROCS(0),
	}
	for _, c := range res.Cells {
		report.Cells = append(report.Cells, cellJSON{
			Cell: c.Name, Ops: c.Ops,
			OldNsOp: c.OldNsOp, NewNsOp: c.NewNsOp, Speedup: c.Speedup(),
			OldAllocsOp: c.OldAllocsOp, NewAllocsOp: c.NewAllocsOp,
			Digest: c.Digest,
		})
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile("results/BENCH_hotpath.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote results/BENCH_hotpath.json")
	return nil
}

// faults replays the same workload under a scripted failure schedule (edge
// access link down, edge server crash, probe-loss burst) once per ranking
// metric, classifying every placement against the simulator's ground-truth
// routing state: the network-aware rankers stop mis-scheduling once probe
// silence ages the failed branch out of the learned topology, while the
// static nearest baseline schedules into the failure for the whole window.
func faults() error {
	res, err := pool.Faults(experiment.FaultsConfig{Seed: *seed, TaskCount: *tasks})
	if err != nil {
		return err
	}
	fmt.Printf("failure schedule (offsets from end of warmup, probe interval %v, detection budget %d intervals):\n",
		res.Cfg.ProbeInterval, experiment.DetectBudgetIntervals)
	for _, ev := range res.Events {
		fmt.Printf("  %s\n", ev)
	}
	fmt.Println(res.Table())
	fmt.Println("(mis = placements unusable at decision time; detect = within the detection budget of a fault start; steady = later in the fault window — zero means recovered)")
	return nil
}

// qps compares scheduler query throughput with and without the
// epoch-versioned snapshot + rank cache read path, telemetry churning at
// the 100 ms probe cadence, queries outnumbering probes 100:1.
func qps() error {
	res, err := experiment.QPS(experiment.QPSConfig{Queries: *queries})
	if err != nil {
		return err
	}
	tb := stats.NewTable("read path", "queries", "elapsed", "queries/s", "cache hit rate", "query p50", "query p99", "epochs")
	for _, m := range []experiment.QPSMode{res.Uncached, res.Cached} {
		hit := "-"
		if rate, ok := m.HitRate(); ok {
			hit = fmt.Sprintf("%.1f%%", rate*100)
		}
		tb.AddRow(m.Label, res.Queries, m.Elapsed.Round(time.Millisecond),
			fmt.Sprintf("%.0f", m.QPS), hit,
			m.QueryLatency.QuantileDuration(0.50).Round(100*time.Nanosecond).String(),
			m.QueryLatency.QuantileDuration(0.99).Round(100*time.Nanosecond).String(),
			m.Epoch)
	}
	fmt.Println(tb.String())
	fmt.Printf("speedup: %.1fx queries/s (target: >=5x when queries outnumber probes 100:1)\n", res.Speedup)
	fmt.Println("(cache hit rate and latency quantiles read from the obs registry the live daemon also serves at /metrics)")
	return nil
}

// table1 prints the workload class definitions plus sampled statistics from
// the generator, validating that generation honors the paper's ranges.
func table1() error {
	tb := stats.NewTable("type", "data size (KB)", "execution time (ms)")
	for _, row := range workload.TableI() {
		tb.AddRow(row.Description,
			fmt.Sprintf("%d - %d", row.MinDataKB, row.MaxDataKB),
			fmt.Sprintf("%d - %d", row.MinExecMs, row.MaxExecMs))
	}
	fmt.Println(tb.String())

	jobs, err := workload.Generate(workload.GenConfig{
		Kind:      workload.Serverless,
		TaskCount: 1000,
		Devices:   []netsim.NodeID{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"},
	}, simtime.NewRand(*seed))
	if err != nil {
		return err
	}
	counts := workload.CountByClass(jobs)
	tb2 := stats.NewTable("class", "sampled tasks (of 1000)")
	for _, c := range workload.Classes() {
		tb2.AddRow(c.String(), counts[c])
	}
	fmt.Println(tb2.String())
	return nil
}

// fig3 reproduces the utilization → (max queue, RTT) calibration sweep.
func fig3() error {
	pts, err := pool.Fig3(experiment.Fig3Config{
		Duration: *fig3dur,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	tb := stats.NewTable("utilization", "mean max queue (pkts)", "peak queue", "mean ping RTT", "drops")
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%.0f%%", p.Utilization*100),
			fmt.Sprintf("%.1f", p.MeanMaxQueue), p.PeakQueue, p.MeanRTT, p.Drops)
	}
	fmt.Println(tb.String())

	if k, err := experiment.KFromFig3(pts); err == nil {
		fmt.Printf("fitted queue→latency factor k = %v (paper hand-set k = 20ms; "+
			"this substrate drains ~0.6ms/pkt, and ranking only needs the ordering)\n", k)
	}
	if cal, err := experiment.CalibrationFromFig3(pts); err == nil {
		fmt.Printf("fitted queue→utilization calibration: %v\n", cal.Points())
	}
	fmt.Println("\npaper shape: max queue <5 pkts below 50% util, >30 pkts near saturation;")
	fmt.Println("RTT ≈ 40ms baseline, slow growth to 80%, sharp increase at 100%.")
	return nil
}

// compareAndPrint runs the three-way comparison and prints the per-class
// tables for both completion and transfer times.
func compareAndPrint(kind workload.Kind, nwMetric core.Metric) (*experiment.Comparison, error) {
	metrics := []core.Metric{nwMetric, core.MetricNearest, core.MetricRandom}
	cmp, err := pool.Compare(experiment.Scenario{
		Seed:       *seed,
		Workload:   kind,
		TaskCount:  *tasks,
		Background: experiment.BackgroundRandom,
	}, metrics)
	if err != nil {
		return nil, err
	}
	fmt.Println("task completion time (per class):")
	fmt.Println(cmp.ClassTable(metrics, false))
	fmt.Println("data transfer time (per class):")
	fmt.Println(cmp.ClassTable(metrics, true))
	fmt.Printf("overall completion gain vs nearest: %.1f%%, vs random: %.1f%%\n",
		cmp.OverallGain(nwMetric, core.MetricNearest, false)*100,
		cmp.OverallGain(nwMetric, core.MetricRandom, false)*100)
	fmt.Printf("overall transfer gain vs nearest: %.1f%%, vs random: %.1f%%\n",
		cmp.OverallGain(nwMetric, core.MetricNearest, true)*100,
		cmp.OverallGain(nwMetric, core.MetricRandom, true)*100)

	if *seeds > 1 {
		seedList := make([]int64, *seeds)
		for i := range seedList {
			seedList[i] = *seed + int64(i)
		}
		cmps, err := pool.CompareSeeds(experiment.Scenario{
			Workload:   kind,
			TaskCount:  *tasks,
			Background: experiment.BackgroundRandom,
		}, metrics, seedList)
		if err != nil {
			return nil, err
		}
		mc, sc := experiment.GainStats(cmps, nwMetric, core.MetricNearest, false)
		mt, st := experiment.GainStats(cmps, nwMetric, core.MetricNearest, true)
		fmt.Printf("across %d seeds: completion gain %.1f%% ± %.1f%%, transfer gain %.1f%% ± %.1f%% (vs nearest)\n",
			*seeds, mc*100, sc*100, mt*100, st*100)
	}
	return cmp, nil
}

func fig5() error {
	fmt.Println("serverless workload, delay-based ranking (paper: 17-31% gain vs nearest, max for VS):")
	_, err := compareAndPrint(workload.Serverless, core.MetricDelay)
	return err
}

func fig6() error {
	fmt.Println("distributed workload, delay-based ranking (paper: 7-13% gain vs nearest, least for L):")
	_, err := compareAndPrint(workload.Distributed, core.MetricDelay)
	return err
}

func fig7() error {
	fmt.Println("distributed workload, bandwidth-based ranking (paper: 28-40% transfer reduction, 22-35% completion):")
	_, err := compareAndPrint(workload.Distributed, core.MetricBandwidth)
	return err
}

// fig8 reproduces the per-task gain ECDF using the Fig 5/6/7 runs.
func fig8() error {
	curves := []struct {
		label  string
		kind   workload.Kind
		metric core.Metric
	}{
		{"serverless-delay", workload.Serverless, core.MetricDelay},
		{"distributed-delay", workload.Distributed, core.MetricDelay},
		{"distributed-bandwidth", workload.Distributed, core.MetricBandwidth},
	}
	// Flatten the 3 curves × 2 metrics into six independent cells so the
	// whole figure runs in one pool pass.
	cells := make([]experiment.Scenario, 0, 2*len(curves))
	for _, c := range curves {
		for _, m := range []core.Metric{c.metric, core.MetricNearest} {
			cells = append(cells, experiment.Scenario{
				Seed:       *seed,
				Workload:   c.kind,
				Metric:     m,
				TaskCount:  *tasks,
				Background: experiment.BackgroundRandom,
			})
		}
	}
	results, err := pool.RunScenarios(cells)
	if err != nil {
		return err
	}
	tb := stats.NewTable("curve", "≤0 gain", "≥20% gain", "≥60% gain", "median gain")
	for i, c := range curves {
		cmp := &experiment.Comparison{
			Scenario: cells[2*i],
			Runs: map[core.Metric]*experiment.RunResult{
				c.metric:           results[2*i],
				core.MetricNearest: results[2*i+1],
			},
		}
		curve := experiment.BuildFig8Curve(c.label, cmp, c.metric)
		tb.AddRow(c.label,
			fmt.Sprintf("%.0f%%", curve.ZeroOrNegativeFraction()*100),
			fmt.Sprintf("%.0f%%", curve.AtLeastFraction(0.20)*100),
			fmt.Sprintf("%.0f%%", curve.AtLeastFraction(0.60)*100),
			fmt.Sprintf("%.0f%%", stats.Median(curve.Gains)*100))
		fmt.Printf("ECDF %s:\n", c.label)
		for _, p := range decimate(curve.ECDF, 12) {
			fmt.Printf("  gain ≤ %6.1f%%  for %5.1f%% of tasks\n", p.Value*100, p.Fraction*100)
		}
	}
	fmt.Println()
	fmt.Println(tb.String())
	fmt.Println("paper: 38% of distributed-delay and 19% of distributed-bandwidth tasks see ≤0 gain;")
	fmt.Println(">60% of distributed-bandwidth tasks see ≥20% gain; 10-20% of tasks see >60% gain.")
	return nil
}

func decimate(pts []stats.ECDFPoint, n int) []stats.ECDFPoint {
	if len(pts) <= n {
		return pts
	}
	out := make([]stats.ECDFPoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	out = append(out, pts[len(pts)-1])
	return out
}

// fig9 sweeps the probing interval under both background patterns.
func fig9() error {
	pts, err := pool.Fig9(experiment.Fig9Config{Seed: *seed, TaskCount: *tasks})
	if err != nil {
		return err
	}
	tb := stats.NewTable("probing interval", "transfer time (Traffic 1)", "transfer time (Traffic 2)")
	for _, p := range pts {
		tb.AddRow(p.Interval, p.Traffic1MeanTransfer, p.Traffic2MeanTransfer)
	}
	fmt.Println(tb.String())
	fmt.Println("paper: transfer time grows >20% from 0.1s to 30s probing interval.")
	return nil
}

// ablation exercises design choices beyond the paper's figures. Every cell
// is independent, so the whole battery is submitted to the pool as one
// flattened batch and the tables are assembled from the ordered results.
func ablation() error {
	kValues := []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond}
	skews := []time.Duration{0, time.Millisecond, 5 * time.Millisecond}
	computeMetrics := []core.Metric{core.MetricDelay, core.MetricComputeAware}

	var cells []experiment.Scenario
	// Baseline for the serverless sweeps (k, collection mode, skew).
	cells = append(cells, experiment.Scenario{
		Seed: *seed, Workload: workload.Serverless, Metric: core.MetricNearest,
		TaskCount: *tasks, Background: experiment.BackgroundRandom,
	})
	for _, k := range kValues {
		cells = append(cells, experiment.Scenario{
			Seed: *seed, Workload: workload.Serverless, Metric: core.MetricDelay,
			TaskCount: *tasks, Background: experiment.BackgroundRandom, K: k,
		})
	}
	// Baseline for the probe-coverage sweep.
	cells = append(cells, experiment.Scenario{
		Seed: *seed, Workload: workload.Distributed, Metric: core.MetricNearest,
		TaskCount: *tasks, Background: experiment.BackgroundRandom,
	})
	for _, schedOnly := range []bool{false, true} {
		cells = append(cells, experiment.Scenario{
			Seed: *seed, Workload: workload.Distributed, Metric: core.MetricBandwidth,
			TaskCount: *tasks, Background: experiment.BackgroundRandom,
			SchedulerOnlyProbes: schedOnly,
		})
	}
	for _, perPkt := range []bool{false, true} {
		cells = append(cells, experiment.Scenario{
			Seed: *seed, Workload: workload.Serverless, Metric: core.MetricDelay,
			TaskCount: *tasks, Background: experiment.BackgroundRandom,
			PerPacketINT: perPkt,
		})
	}
	for _, skew := range skews {
		cells = append(cells, experiment.Scenario{
			Seed: *seed, Workload: workload.Serverless, Metric: core.MetricDelay,
			TaskCount: *tasks, Background: experiment.BackgroundRandom, ClockSkew: skew,
		})
	}
	for _, m := range computeMetrics {
		cells = append(cells, experiment.Scenario{
			Seed: *seed, Workload: workload.Distributed, Metric: m,
			TaskCount: *tasks, Background: experiment.BackgroundRandom,
			Slots: 2, ComputeAware: true,
		})
	}

	results, err := pool.RunScenarios(cells)
	if err != nil {
		return err
	}
	next := 0
	take := func() *experiment.RunResult { r := results[next]; next++; return r }

	// k sweep: how sensitive is the delay ranking to the conversion factor?
	fmt.Println("k sweep (serverless, delay ranking, gain vs nearest):")
	tb := stats.NewTable("k", "mean completion", "gain vs nearest")
	base := take()
	for _, k := range kValues {
		r := take()
		tb.AddRow(k, r.MeanCompletion(),
			fmt.Sprintf("%.1f%%", stats.GainDuration(base.MeanCompletion(), r.MeanCompletion())*100))
	}
	fmt.Println(tb.String())

	// Probe coverage: the paper assumes probes visit every device and
	// leaves route selection as future work. Compare the implemented
	// greedy coverage planner against the paper's literal
	// server→scheduler probing.
	fmt.Println("probe route coverage (distributed, bandwidth ranking, gain vs nearest):")
	tb5 := stats.NewTable("probing scope", "mean transfer", "gain vs nearest")
	bwBase := take()
	for _, schedOnly := range []bool{false, true} {
		label := "coverage-planned"
		if schedOnly {
			label = "scheduler-only (paper literal)"
		}
		r := take()
		tb5.AddRow(label, r.MeanTransfer(),
			fmt.Sprintf("%.1f%%", stats.GainDuration(bwBase.MeanTransfer(), r.MeanTransfer())*100))
	}
	fmt.Println(tb5.String())

	// Register staging vs per-packet INT: byte overhead comparison.
	fmt.Println("INT overhead: register staging (this paper) vs per-packet embedding:")
	tb2 := stats.NewTable("hops", "probe bytes (staged)", "per-packet overhead (2 fields)")
	for _, hops := range []int{1, 3, 5, 8} {
		staged, err := experiment.OverheadTelemetryBytes(hops)
		if err != nil {
			return err
		}
		perPkt := dataplane.PerPacketINTOverhead(hops, 2, 4, 1000)
		tb2.AddRow(hops, staged, fmt.Sprintf("%.1f%% of every packet", perPkt*100))
	}
	fmt.Println(tb2.String())

	// End-to-end collection-mode ablation: the full system under register
	// staging vs classic per-packet embedding.
	fmt.Println("collection mode (serverless, delay ranking):")
	tb6 := stats.NewTable("mode", "mean completion", "gain vs nearest", "telemetry bytes on production packets")
	for _, perPkt := range []bool{false, true} {
		label := "register staging (paper)"
		if perPkt {
			label = "per-packet embedding"
		}
		r := take()
		tb6.AddRow(label, r.MeanCompletion(),
			fmt.Sprintf("%.1f%%", stats.GainDuration(base.MeanCompletion(), r.MeanCompletion())*100),
			fmt.Sprintf("%d", r.INTOverheadBytes))
	}
	fmt.Println(tb6.String())

	// Clock skew robustness: skewed NTP on half the switches.
	fmt.Println("clock skew robustness (delay ranking gain vs nearest):")
	tb3 := stats.NewTable("skew", "mean completion", "gain vs nearest")
	for _, skew := range skews {
		r := take()
		tb3.AddRow(skew, r.MeanCompletion(),
			fmt.Sprintf("%.1f%%", stats.GainDuration(base.MeanCompletion(), r.MeanCompletion())*100))
	}
	fmt.Println(tb3.String())

	// Compute-aware extension vs plain delay under constrained servers.
	fmt.Println("compute-aware extension (2 slots per server):")
	tb4 := stats.NewTable("metric", "mean completion")
	for _, m := range computeMetrics {
		r := take()
		tb4.AddRow(m.String(), r.MeanCompletion())
	}
	fmt.Println(tb4.String())
	return nil
}

// parbench measures the worker-pool speedup on the multi-seed comparison
// grid (4 seeds × 3 metrics = 12 cells) and writes the points to
// results/BENCH_parallel.json so later PRs have a perf trajectory to
// regress against. It also cross-checks that every pool size produces
// byte-identical comparison exports.
func parbench() error {
	metrics := []core.Metric{core.MetricDelay, core.MetricNearest, core.MetricRandom}
	seedList := []int64{*seed, *seed + 1, *seed + 2, *seed + 3}
	sc := experiment.Scenario{
		Workload:   workload.Serverless,
		TaskCount:  *tasks,
		Background: experiment.BackgroundRandom,
	}
	workers := []int{1, 2, 4, 8}

	type point struct {
		Workers int     `json:"workers"`
		Seconds float64 `json:"seconds"`
		Speedup float64 `json:"speedup"`
	}
	report := struct {
		Bench           string  `json:"bench"`
		Tasks           int     `json:"tasks"`
		Seeds           int     `json:"seeds"`
		Metrics         int     `json:"metrics"`
		CPUs            int     `json:"cpus"`
		Cores           int     `json:"cores"`
		OutputIdentical bool    `json:"output_identical"`
		Points          []point `json:"points"`
	}{
		Bench:           "compare_seeds",
		Tasks:           *tasks,
		Seeds:           len(seedList),
		Metrics:         len(metrics),
		CPUs:            runtime.NumCPU(),
		Cores:           runtime.GOMAXPROCS(0),
		OutputIdentical: true,
	}
	// Speedup numbers from a 1-core runtime describe the scheduler, not the
	// pool; the cpus/cores fields above make the artifact self-describing,
	// and the warning keeps a 1-CPU container from looking like a perf
	// regression.
	if report.Cores == 1 {
		fmt.Println("warning: GOMAXPROCS=1 — pool cells run serially; speedup points measure overhead, not parallelism")
	}

	var serialExport []byte
	var serialSecs float64
	tb := stats.NewTable("workers", "wall clock", "speedup", "output")
	for _, w := range workers {
		start := time.Now()
		cmps, err := experiment.NewPool(w).CompareSeeds(sc, metrics, seedList)
		if err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		var buf bytes.Buffer
		for _, cmp := range cmps {
			if err := experiment.WriteComparisonJSON(&buf, cmp, core.MetricNearest); err != nil {
				return err
			}
		}
		identical := true
		if w == 1 {
			serialExport = append([]byte(nil), buf.Bytes()...)
			serialSecs = secs
		} else {
			identical = bytes.Equal(buf.Bytes(), serialExport)
			if !identical {
				report.OutputIdentical = false
			}
		}
		speedup := serialSecs / secs
		report.Points = append(report.Points, point{Workers: w, Seconds: secs, Speedup: speedup})
		outcome := "byte-identical to serial"
		if !identical {
			outcome = "DIFFERS FROM SERIAL"
		}
		if w == 1 {
			outcome = "serial reference"
		}
		tb.AddRow(w, fmt.Sprintf("%.2fs", secs), fmt.Sprintf("%.2fx", speedup), outcome)
	}
	fmt.Println(tb.String())
	if !report.OutputIdentical {
		return fmt.Errorf("parallel output differs from serial")
	}

	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile("results/BENCH_parallel.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote results/BENCH_parallel.json")
	return nil
}
