// Command intsim runs a single scheduling scenario in the packet-level
// network simulator and prints per-class results.
//
// Example:
//
//	intsim -workload serverless -metric delay -tasks 200 -seed 42
//	intsim -workload distributed -metric bandwidth -background random
//	intsim -seeds 8 -parallel 8        # seed replication on a worker pool
//	intsim -faults schedule.json       # scripted failures during the run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"intsched/internal/core"
	"intsched/internal/experiment"
	"intsched/internal/fault"
	"intsched/internal/stats"
	"intsched/internal/telemetry"
	"intsched/internal/workload"
)

func main() {
	var (
		seed       = flag.Int64("seed", 42, "random seed (drives workload, traffic, random ranking)")
		kind       = flag.String("workload", "serverless", "workload type: serverless | distributed")
		metric     = flag.String("metric", "delay", "ranking metric: delay | bandwidth | nearest | random | compute-aware")
		tasks      = flag.Int("tasks", 200, "number of tasks")
		interval   = flag.Duration("probe-interval", 100*time.Millisecond, "INT probing interval")
		background = flag.String("background", "random", "background traffic: none | random | traffic1 | traffic2")
		k          = flag.Duration("k", core.DefaultK, "queue occupancy to latency conversion factor")
		class      = flag.String("class", "", "restrict to one task class: VS | S | M | L (default: all)")
		slots      = flag.Int("slots", 0, "execution slots per server (0 = unlimited)")
		topoFile   = flag.String("topo", "", "JSON topology spec file (default: the paper's Fig 4)")
		faultsFile = flag.String("faults", "", "JSON fault schedule file: scripted link/node failures injected during the run (event times relative to the end of warmup)")
		exclUnre   = flag.Bool("exclude-unreachable", false, "scheduler recovery policy: drop candidates whose learned path is gone (on automatically with -faults)")
		hysteresis = flag.Float64("hysteresis", 0, "anti-jitter switching margin (0 disables)")
		csvOut     = flag.String("csv", "", "write per-task results as CSV to this file")
		verbose    = flag.Bool("v", false, "print per-task results")
		seedCount  = flag.Int("seeds", 1, "replicate the run across this many consecutive seeds and report per-seed means")
		parallel   = flag.Int("parallel", 0, "worker pool size for seed replication (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		telemMode  = flag.String("telemetry-mode", "deterministic", "telemetry mode: deterministic | probabilistic (PINT-style per-hop sampling with collector reassembly)")
		sampleRate = flag.Float64("sample-rate", 1.0, "probabilistic per-hop insertion probability in [0,1] (ignored in deterministic mode)")
		queueDelta = flag.Int("queue-delta", 0, "value-approximation threshold: suppress a port's queue report unless its maximum moved by more than this many packets (probabilistic mode; 0 reports every flush)")
		adaptive   = flag.Bool("adaptive", false, "run the adaptive cadence control loop: the collector retunes per-stream probe intervals from its own telemetry signals")
		probeBgt   = flag.Float64("probe-budget", 0, "adaptive probe budget as a fraction (0,1] of the full static rate (0 disables the cap; requires -adaptive)")
	)
	flag.Parse()

	mode, ok := telemetry.ParseMode(*telemMode)
	if !ok {
		fatalf("unknown -telemetry-mode %q (want deterministic or probabilistic)", *telemMode)
	}
	sc := experiment.Scenario{
		Seed:                *seed,
		TaskCount:           *tasks,
		ProbeInterval:       *interval,
		K:                   *k,
		Slots:               *slots,
		Hysteresis:          *hysteresis,
		TelemetryMode:       mode,
		SampleRate:          *sampleRate,
		QueueDeltaThreshold: *queueDelta,
		Adaptive:            *adaptive,
		ProbeBudget:         *probeBgt,
	}
	if *topoFile != "" {
		data, err := os.ReadFile(*topoFile)
		if err != nil {
			fatalf("%v", err)
		}
		spec, err := experiment.ParseTopoSpec(data)
		if err != nil {
			fatalf("%v", err)
		}
		sc.Topo = spec
	}
	sc.ExcludeUnreachable = *exclUnre
	if *faultsFile != "" {
		data, err := os.ReadFile(*faultsFile)
		if err != nil {
			fatalf("%v", err)
		}
		evs, err := fault.ParseSchedule(data)
		if err != nil {
			fatalf("%v", err)
		}
		sc.Faults = evs
		sc.ExcludeUnreachable = true
		sc.RecordDecisions = true
	}
	switch *kind {
	case "serverless":
		sc.Workload = workload.Serverless
	case "distributed":
		sc.Workload = workload.Distributed
	default:
		fatalf("unknown workload %q", *kind)
	}
	m, ok := core.ParseMetric(*metric)
	if !ok {
		fatalf("unknown metric %q", *metric)
	}
	sc.Metric = m
	sc.ComputeAware = m == core.MetricComputeAware
	switch *background {
	case "none":
		sc.Background = experiment.BackgroundNone
	case "random":
		sc.Background = experiment.BackgroundRandom
	case "traffic1":
		sc.Background = experiment.BackgroundTraffic1
	case "traffic2":
		sc.Background = experiment.BackgroundTraffic2
	default:
		fatalf("unknown background %q", *background)
	}
	if *class != "" {
		found := false
		for _, c := range workload.Classes() {
			if c.String() == *class {
				sc.Classes = []workload.Class{c}
				found = true
			}
		}
		if !found {
			fatalf("unknown class %q", *class)
		}
	}
	if err := sc.Validate(); err != nil {
		fatalf("%v", err)
	}

	if *seedCount > 1 {
		runSeeds(sc, *seedCount, *parallel)
		return
	}

	fmt.Printf("running %s workload, %s ranking, %d tasks, seed %d, background %s...\n",
		sc.Workload, sc.Metric, sc.TaskCount, sc.Seed, sc.Background)
	start := time.Now()
	res, err := experiment.Run(sc)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("done in %v wall (%v virtual, %d events, %d probes, %d drops)\n\n",
		time.Since(start).Round(time.Millisecond), res.VirtualDuration.Round(time.Second),
		res.EventsProcessed, res.ProbesReceived, res.PacketsDropped)

	if *verbose {
		tb := stats.NewTable("task", "class", "device", "server", "transfer", "completion")
		for _, r := range res.Results {
			tb.AddRow(r.TaskID, r.Class.String(), string(r.Device), string(r.Server),
				r.TransferTime(), r.CompletionTime())
		}
		fmt.Println(tb.String())
	}

	byClass := experiment.SummarizeByClass(res)
	tb := stats.NewTable("class", "tasks", "mean transfer", "mean completion")
	for _, c := range workload.Classes() {
		s := byClass[c]
		tb.AddRow(c.String(), s.Count, s.MeanTransfer, s.MeanCompletion)
	}
	fmt.Println(tb.String())
	fmt.Printf("overall: mean transfer %v, mean completion %v, incomplete %d\n",
		res.MeanTransfer().Round(time.Millisecond), res.MeanCompletion().Round(time.Millisecond), res.Incomplete)

	if sc.Adaptive {
		fmt.Printf("adaptive: %d directives applied (%d churn tightens, %d silence tightens, %d back-offs, %d budget clamps)\n",
			res.DirectivesApplied, res.CadenceTightens, res.SilenceTightens, res.CadenceBackoffs, res.BudgetClamps)
	}

	if len(sc.Faults) > 0 {
		fmt.Printf("faults: %d events applied, %d reroutes, %d probes dropped; %d adjacency evictions, %d path remaps\n",
			res.FaultStats.EventsApplied, res.FaultStats.Reroutes, res.FaultStats.ProbesDropped,
			res.AdjacencyEvictions, res.PathRemaps)
		fmt.Printf("decisions: %d total, %d mis-scheduled (placement unusable at decision time)\n",
			len(res.Decisions), res.MisScheduled())
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := experiment.WriteResultsCSV(f, res); err != nil {
			fatalf("writing csv: %v", err)
		}
		fmt.Printf("per-task results written to %s\n", *csvOut)
	}
}

// runSeeds replicates the scenario across consecutive seeds on a worker
// pool and prints per-seed and aggregate means. Results are assembled in
// seed order, so the report is identical at any -parallel setting.
func runSeeds(sc experiment.Scenario, count, workers int) {
	cells := make([]experiment.Scenario, count)
	for i := range cells {
		cells[i] = sc
		cells[i].Seed = sc.Seed + int64(i)
	}
	fmt.Printf("running %s workload, %s ranking, %d tasks, seeds %d..%d, background %s (%d workers)...\n",
		sc.Workload, sc.Metric, sc.TaskCount, sc.Seed, sc.Seed+int64(count)-1, sc.Background,
		experiment.NewPool(workers).Workers())
	start := time.Now()
	results, err := experiment.NewPool(workers).RunScenarios(cells)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("done in %v wall (%d cells)\n\n", time.Since(start).Round(time.Millisecond), count)

	tb := stats.NewTable("seed", "mean transfer", "mean completion", "incomplete")
	var sumTransfer, sumCompletion time.Duration
	for i, res := range results {
		tb.AddRow(cells[i].Seed, res.MeanTransfer().Round(time.Millisecond),
			res.MeanCompletion().Round(time.Millisecond), res.Incomplete)
		sumTransfer += res.MeanTransfer()
		sumCompletion += res.MeanCompletion()
	}
	fmt.Println(tb.String())
	n := time.Duration(count)
	fmt.Printf("across %d seeds: mean transfer %v, mean completion %v\n",
		count, (sumTransfer / n).Round(time.Millisecond), (sumCompletion / n).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "intsim: "+format+"\n", args...)
	os.Exit(1)
}
