// Command intprobe runs a live probe agent on an edge server: every
// interval it emits one INT probe datagram toward the scheduler through the
// server's attached soft switch.
//
//	intprobe -id n1 -uplink 127.0.0.1:7101 -collector sched -interval 100ms
//
// Note the agent's bound UDP address (printed at startup) is the address
// the attached switch must route this host's traffic to.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intsched/internal/live"
	"intsched/internal/telemetry"
)

func main() {
	var (
		id         = flag.String("id", "n1", "edge server node name")
		uplink     = flag.String("uplink", "", "UDP address of the attached soft switch (required)")
		collector  = flag.String("collector", "sched", "scheduler node name probes are addressed to")
		interval   = flag.Duration("interval", 100*time.Millisecond, "probing interval (paper default 100ms)")
		telemMode  = flag.String("telemetry-mode", "deterministic", "telemetry mode stamped into probe headers: deterministic or probabilistic (PINT-style per-hop sampling)")
		sampleRate = flag.Float64("sample-rate", 1.0, "probabilistic per-hop insertion probability in [0,1] (ignored in deterministic mode)")
		adaptive   = flag.Bool("adaptive", false, "honor collector cadence directives (default: static interval, directives dropped)")
	)
	flag.Parse()
	if *uplink == "" {
		fmt.Fprintln(os.Stderr, "intprobe: -uplink is required")
		os.Exit(1)
	}
	mode, ok := telemetry.ParseMode(*telemMode)
	if !ok {
		fmt.Fprintf(os.Stderr, "intprobe: unknown -telemetry-mode %q (want deterministic or probabilistic)\n", *telemMode)
		os.Exit(1)
	}
	agent, err := live.NewProbeAgent(*id, *uplink, *collector, *interval)
	if err != nil {
		fmt.Fprintf(os.Stderr, "intprobe: %v\n", err)
		os.Exit(1)
	}
	defer agent.Close()
	agent.SetTelemetry(mode, telemetry.RateToWire(*sampleRate))
	if *adaptive {
		agent.EnableAdaptive()
	}
	agent.Start()
	fmt.Printf("intprobe: %s probing %s every %v via %s (host address %s, telemetry %s",
		agent.ID(), *collector, *interval, *uplink, agent.Addr(), mode)
	if mode == telemetry.ModeProbabilistic {
		fmt.Printf(" p=%.2f", *sampleRate)
	}
	if *adaptive {
		fmt.Print(", adaptive cadence")
	}
	fmt.Println(")")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("\nintprobe: shutting down")
}
