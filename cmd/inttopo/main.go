// Command inttopo emits topology spec files (JSON) consumable by
// cmd/intsim's -topo flag:
//
//	inttopo -kind fig4 > fig4.json
//	inttopo -kind leafspine -spines 2 -leaves 4 -hosts-per-leaf 2 > ls.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"intsched/internal/experiment"
)

func main() {
	var (
		kind         = flag.String("kind", "fig4", "topology kind: fig4 | leafspine")
		spines       = flag.Int("spines", 2, "leafspine: number of spine switches")
		leaves       = flag.Int("leaves", 4, "leafspine: number of leaf switches")
		hostsPerLeaf = flag.Int("hosts-per-leaf", 2, "leafspine: hosts per leaf")
	)
	flag.Parse()

	var spec *experiment.TopoSpec
	var err error
	switch *kind {
	case "fig4":
		spec = experiment.Fig4Spec()
	case "leafspine":
		spec, err = experiment.FatTreeSpec(*spines, *leaves, *hostsPerLeaf)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "inttopo: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spec); err != nil {
		fmt.Fprintf(os.Stderr, "inttopo: %v\n", err)
		os.Exit(1)
	}
}
