// Command inttopo emits topology spec files (JSON) consumable by
// cmd/intsim's -topo flag:
//
//	inttopo -kind fig4 > fig4.json
//	inttopo -kind leafspine -spines 2 -leaves 4 -hosts-per-leaf 2 > ls.json
//	inttopo -kind clos -seed 7 > clos.json
//	inttopo -kind metro -regions 4 -servers-per-tor 8 > metro.json
//
// The clos and metro kinds generate the scale-experiment fabrics: seeded
// per-link delay jitter (same seed, same JSON) and partition maps for the
// sharded collector.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"intsched/internal/experiment"
)

func main() {
	var (
		kind         = flag.String("kind", "fig4", "topology kind: fig4 | leafspine | clos | metro")
		spines       = flag.Int("spines", 2, "leafspine: number of spine switches")
		leaves       = flag.Int("leaves", 4, "leafspine: number of leaf switches")
		hostsPerLeaf = flag.Int("hosts-per-leaf", 2, "leafspine: hosts per leaf")
		seed         = flag.Int64("seed", 1, "clos/metro: link delay jitter seed")
		pods         = flag.Int("pods", 0, "clos: pod count (0 = default 16)")
		cores        = flag.Int("cores", 0, "clos: core switch count (0 = default 16)")
		aggsPerPod   = flag.Int("aggs-per-pod", 0, "clos: aggregation switches per pod (0 = default 4)")
		torsPerPod   = flag.Int("tors-per-pod", 0, "clos/metro: ToR switches per pod (0 = default 8)")
		hostsPerTor  = flag.Int("hosts-per-tor", 0, "clos: edge servers per ToR (0 = default 2)")
		regions      = flag.Int("regions", 0, "metro: region count (0 = default 4)")
		podsPerReg   = flag.Int("pods-per-region", 0, "metro: pod switches per region (0 = default 4)")
		serversPer   = flag.Int("servers-per-tor", 0, "metro: edge servers per ToR (0 = default 8)")
	)
	flag.Parse()

	var spec *experiment.TopoSpec
	var err error
	switch *kind {
	case "fig4":
		spec = experiment.Fig4Spec()
	case "leafspine":
		spec, err = experiment.FatTreeSpec(*spines, *leaves, *hostsPerLeaf)
	case "clos":
		spec, err = experiment.ClosSpec(experiment.ClosConfig{
			Pods: *pods, Cores: *cores, AggsPerPod: *aggsPerPod,
			TorsPerPod: *torsPerPod, HostsPerTor: *hostsPerTor, Seed: *seed,
		})
	case "metro":
		spec, err = experiment.MetroSpec(experiment.MetroConfig{
			Regions: *regions, PodsPerRegion: *podsPerReg,
			TorsPerPod: *torsPerPod, ServersPerTor: *serversPer, Seed: *seed,
		})
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "inttopo: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spec); err != nil {
		fmt.Fprintf(os.Stderr, "inttopo: %v\n", err)
		os.Exit(1)
	}
}
