// Command intdevice is the live edge-device client: it queries the
// scheduler's TCP API for ranked candidate edge servers.
//
//	intdevice -scheduler 127.0.0.1:7002 -from dev -metric delay
//	intdevice -scheduler 127.0.0.1:7002 -from dev -metric bandwidth -watch 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"intsched/internal/live"
	"intsched/internal/stats"
	"intsched/internal/wire"
)

func main() {
	var (
		scheduler = flag.String("scheduler", "127.0.0.1:7002", "scheduler query API address")
		from      = flag.String("from", "dev", "querying device's node name")
		metric    = flag.String("metric", "delay", "ranking metric: delay | bandwidth | transfer-time")
		count     = flag.Int("count", 0, "limit the returned list (0 = all)")
		bytes     = flag.Int64("bytes", 0, "task data size hint for transfer-time ranking")
		watch     = flag.Duration("watch", 0, "re-query at this interval (0 = once)")
	)
	flag.Parse()

	query := func() error {
		resp, err := live.Query(*scheduler, &wire.QueryRequest{
			From:      *from,
			Metric:    *metric,
			Count:     *count,
			Sorted:    true,
			DataBytes: *bytes,
		}, 5*time.Second)
		if err != nil {
			return err
		}
		tb := stats.NewTable("rank", "server", "est. delay", "est. bandwidth", "hops")
		for i, c := range resp.Candidates {
			tb.AddRow(i+1, c.Node, c.Delay().Round(time.Millisecond),
				fmt.Sprintf("%.1f Mbps", c.BandwidthBps/1e6), c.Hops)
		}
		fmt.Println(tb.String())
		return nil
	}

	if err := query(); err != nil {
		fmt.Fprintf(os.Stderr, "intdevice: %v\n", err)
		os.Exit(1)
	}
	if *watch <= 0 {
		return
	}
	for range time.Tick(*watch) {
		fmt.Printf("--- %s ---\n", time.Now().Format("15:04:05"))
		if err := query(); err != nil {
			fmt.Fprintf(os.Stderr, "intdevice: %v\n", err)
		}
	}
}
